#include "analysis/dataflow.hpp"

#include <algorithm>

namespace lzp::analysis {

bool ValueSet::join(const ValueSet& other) {
  if (other.is_bottom() || is_top()) return false;
  if (other.is_top()) {
    *this = top();
    return true;
  }
  if (is_bottom()) {
    *this = other;
    return true;
  }
  bool changed = false;
  for (std::uint64_t v : other.values_) changed |= values_.insert(v).second;
  if (values_.size() > kMaxValues) {
    *this = top();
    return true;
  }
  return changed;
}

const ValueSet& InsnValues::reg(isa::Gpr which) const {
  for (std::size_t i = 0; i < kDataflowRegs.size(); ++i) {
    if (kDataflowRegs[i] == which) return regs[i];
  }
  static const ValueSet kTop = ValueSet::top();
  return kTop;
}

ValueSet DataflowResult::value_at(std::uint64_t addr, isa::Gpr reg) const {
  const auto it = at.find(addr);
  if (it == at.end()) return ValueSet::top();
  return it->second.reg(reg);
}

namespace {

using isa::Gpr;
using isa::Op;

// Abstract push/pop stacks deeper than this are dropped (one-way to
// "invalid"); keeps the lattice finite under loops that push net-positive.
constexpr std::size_t kMaxStackDepth = 64;

// Abstract machine state at a program point.
struct RegState {
  std::array<ValueSet, isa::kNumGprs> regs;
  std::vector<ValueSet> stack;  // top of stack at back()
  bool stack_valid = true;
  bool reachable = false;

  static RegState entry_top() {
    RegState s;
    s.reachable = true;
    for (auto& r : s.regs) r = ValueSet::top();
    return s;
  }

  [[nodiscard]] const ValueSet& reg(Gpr g) const {
    return regs[static_cast<std::size_t>(g)];
  }

  void invalidate_stack() {
    stack_valid = false;
    stack.clear();
  }

  void set_reg(Gpr g, ValueSet v) {
    if (g == Gpr::rsp) {
      // rsp's value is never tracked; repointing it orphans the abstract
      // stack.
      invalidate_stack();
      regs[static_cast<std::size_t>(g)] = ValueSet::top();
      return;
    }
    regs[static_cast<std::size_t>(g)] = std::move(v);
  }

  void clobber_all() {
    for (auto& r : regs) r = ValueSet::top();
    invalidate_stack();
  }

  // Lattice join (in place); returns true on change.
  bool join(const RegState& other) {
    if (!other.reachable) return false;
    if (!reachable) {
      *this = other;
      return true;
    }
    bool changed = false;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      changed |= regs[i].join(other.regs[i]);
    }
    if (stack_valid) {
      if (!other.stack_valid || other.stack.size() != stack.size()) {
        invalidate_stack();
        changed = true;
      } else {
        for (std::size_t i = 0; i < stack.size(); ++i) {
          changed |= stack[i].join(other.stack[i]);
        }
      }
    }
    return changed;
  }
};

// What a direct callee may do to the caller's registers (entry = all-⊤, so
// the summary over-approximates every calling context).
struct Summary {
  std::array<bool, isa::kNumGprs> writes{};
  std::array<ValueSet, isa::kNumGprs> exit;  // meaningful where writes[i]
  bool conservative = false;
};

Summary conservative_summary() {
  Summary s;
  s.conservative = true;
  s.writes.fill(true);
  s.exit.fill(ValueSet::top());
  return s;
}

class Engine {
 public:
  explicit Engine(const Cfg& cfg) : cfg_(cfg) {
    for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
      block_by_leader_[cfg.blocks[i].start] = i;
    }
  }

  DataflowResult run(std::uint64_t entry) {
    DataflowResult result;
    const auto bit = block_by_leader_.find(entry);
    if (bit == block_by_leader_.end()) return result;
    std::map<std::size_t, RegState> in_states;
    in_states[bit->second] = RegState::entry_top();
    std::set<std::size_t> worklist{bit->second};
    run_fixpoint(nullptr, in_states, worklist, /*interprocedural=*/true,
                 nullptr);

    // Recording pass: replay each block once from its fixpoint in-state and
    // snapshot the reported registers at every instruction entry.
    for (const auto& [b, in_state] : in_states) {
      if (!in_state.reachable) continue;
      RegState s = in_state;
      for (std::uint64_t addr : cfg_.blocks[b].insns) {
        const isa::Instruction* insn = insn_at(addr);
        if (insn == nullptr) break;
        InsnValues iv;
        for (std::size_t k = 0; k < kDataflowRegs.size(); ++k) {
          iv.regs[k] = s.reg(kDataflowRegs[k]);
        }
        result.at.emplace(addr, std::move(iv));
        transfer(addr, *insn, s);
      }
    }
    result.block_passes = block_passes_;
    result.callee_summaries = summaries_.size();
    result.conservative_calls = static_cast<std::size_t>(std::count_if(
        summaries_.begin(), summaries_.end(),
        [](const auto& kv) { return kv.second.conservative; }));
    return result;
  }

 private:
  [[nodiscard]] const isa::Instruction* insn_at(std::uint64_t addr) const {
    const auto it = cfg_.reachable.find(addr);
    return it == cfg_.reachable.end() ? nullptr : &it->second.insn;
  }

  // Worklist fixpoint over `extent` (nullptr = whole CFG). When
  // `interprocedural`, call-site states are joined into callee entry blocks
  // so instructions inside callees see the union of their calling contexts.
  // Terminates because both joins are monotone over finite-height lattices
  // and blocks are only re-enqueued when their in-state strictly grows.
  void run_fixpoint(const std::set<std::size_t>* extent,
                    std::map<std::size_t, RegState>& in_states,
                    std::set<std::size_t>& worklist, bool interprocedural,
                    RegState* ret_join) {
    const auto in_extent = [&](std::size_t b) {
      return extent == nullptr || extent->count(b) != 0;
    };
    while (!worklist.empty()) {
      const std::size_t b = *worklist.begin();
      worklist.erase(worklist.begin());
      RegState s = in_states[b];
      if (!s.reachable) continue;
      ++block_passes_;
      const BasicBlock& block = cfg_.blocks[b];
      const isa::Instruction* last = nullptr;
      for (std::uint64_t addr : block.insns) {
        const isa::Instruction* insn = insn_at(addr);
        if (insn == nullptr) break;
        last = insn;
        if (interprocedural && insn->op == Op::kCallRel) {
          const std::uint64_t target =
              addr + insn->length + static_cast<std::uint64_t>(insn->imm);
          const auto it = block_by_leader_.find(target);
          if (it != block_by_leader_.end() && in_extent(it->second)) {
            RegState contrib = s;
            contrib.invalidate_stack();  // callee frame discipline unknown
            if (in_states[it->second].join(contrib)) {
              worklist.insert(it->second);
            }
          }
        }
        transfer(addr, *insn, s);
      }
      if (ret_join != nullptr && last != nullptr && last->op == Op::kRet) {
        ret_join->join(s);
      }
      for (std::uint64_t succ : block.succs) {
        const auto it = block_by_leader_.find(succ);
        if (it == block_by_leader_.end() || !in_extent(it->second)) continue;
        if (in_states[it->second].join(s)) worklist.insert(it->second);
      }
    }
  }

  // Transfer function for one instruction.
  void transfer(std::uint64_t addr, const isa::Instruction& insn, RegState& s) {
    const Gpr r1 = insn.r1;
    const Gpr r2 = insn.r2;
    const auto wrap_add = [](std::uint64_t a, std::uint64_t b) { return a + b; };
    const auto wrap_sub = [](std::uint64_t a, std::uint64_t b) { return a - b; };
    switch (insn.op) {
      case Op::kMovRI:
      case Op::kMovRI32:
        // kMovRI32's imm is already the zero-extended 32-bit value.
        s.set_reg(r1, ValueSet::constant(static_cast<std::uint64_t>(insn.imm)));
        break;
      case Op::kMovRR:
        s.set_reg(r1, s.reg(r2));
        break;
      case Op::kXorRR:
        if (r1 == r2) {
          s.set_reg(r1, ValueSet::constant(0));
        } else {
          s.set_reg(r1, ValueSet::binop(
                            s.reg(r1), s.reg(r2),
                            [](std::uint64_t a, std::uint64_t b) { return a ^ b; }));
        }
        break;
      case Op::kSubRR:
        if (r1 == r2) {
          s.set_reg(r1, ValueSet::constant(0));
        } else {
          s.set_reg(r1, ValueSet::binop(s.reg(r1), s.reg(r2), wrap_sub));
        }
        break;
      case Op::kAddRR:
        s.set_reg(r1, ValueSet::binop(s.reg(r1), s.reg(r2), wrap_add));
        break;
      case Op::kMulRR:
        s.set_reg(r1, ValueSet::binop(
                          s.reg(r1), s.reg(r2),
                          [](std::uint64_t a, std::uint64_t b) { return a * b; }));
        break;
      case Op::kDivRR:
      case Op::kModRR:
        // Signed divide with trapping corner cases; not worth modeling.
        s.set_reg(r1, ValueSet::top());
        break;
      case Op::kAddRI:
        s.set_reg(r1, ValueSet::binop(
                          s.reg(r1),
                          ValueSet::constant(static_cast<std::uint64_t>(insn.imm)),
                          wrap_add));
        break;
      case Op::kSubRI:
        s.set_reg(r1, ValueSet::binop(
                          s.reg(r1),
                          ValueSet::constant(static_cast<std::uint64_t>(insn.imm)),
                          wrap_sub));
        break;
      case Op::kLoad:
      case Op::kLoad8:
      case Op::kLoadGs:
      case Op::kLoadGs8:
      case Op::kXmovRX:
      case Op::kYmovRYHi:
      case Op::kFstpR:
      case Op::kRdGs:
        s.set_reg(r1, ValueSet::top());
        break;
      case Op::kPush:
        if (s.stack_valid) {
          if (s.stack.size() >= kMaxStackDepth) {
            s.invalidate_stack();
          } else {
            s.stack.push_back(s.reg(r1));
          }
        }
        break;
      case Op::kPop:
        if (s.stack_valid && !s.stack.empty()) {
          ValueSet v = s.stack.back();
          s.stack.pop_back();
          s.set_reg(r1, std::move(v));
        } else {
          // Popping beyond the tracked frame (or with an invalid stack):
          // the slot's content is unknown.
          s.set_reg(r1, ValueSet::top());
        }
        break;
      case Op::kStore:
      case Op::kStore8:
      case Op::kStoreGs:
      case Op::kStoreGs8:
      case Op::kXstore:
        // Any store may alias a tracked stack slot (gs may point anywhere).
        s.invalidate_stack();
        break;
      case Op::kSyscall:
      case Op::kSysenter:
        s.set_reg(Gpr::rax, ValueSet::top());
        s.set_reg(Gpr::rcx, ValueSet::top());
        s.set_reg(Gpr::r11, ValueSet::top());
        // The kernel may write user memory (e.g. read(2) into a stack
        // buffer), so tracked stack slots are stale too.
        s.invalidate_stack();
        break;
      case Op::kCallRel: {
        const std::uint64_t target =
            addr + insn.length + static_cast<std::uint64_t>(insn.imm);
        const Summary& sum = summarize(target);
        for (std::size_t i = 0; i < isa::kNumGprs; ++i) {
          if (sum.writes[i]) s.set_reg(static_cast<Gpr>(i), sum.exit[i]);
        }
        s.invalidate_stack();
        break;
      }
      case Op::kCallRax:
      case Op::kHostCall:
        // Computed call / native interposer code: anything may happen.
        s.clobber_all();
        break;
      default:
        // Compares, branches, x87/xmm-only writes, wrgs, nop, ret, hlt,
        // trap: no GPR writes.
        break;
    }
  }

  // Blocks reachable from `entry_block` via direct block successors: the
  // callee's extent. Fallthrough splicing can over-include neighbouring
  // code, which only makes the summary more conservative.
  [[nodiscard]] std::set<std::size_t> extent_of(std::size_t entry_block) const {
    std::set<std::size_t> extent;
    std::vector<std::size_t> work{entry_block};
    while (!work.empty()) {
      const std::size_t b = work.back();
      work.pop_back();
      if (!extent.insert(b).second) continue;
      for (std::uint64_t succ : cfg_.blocks[b].succs) {
        const auto it = block_by_leader_.find(succ);
        if (it != block_by_leader_.end() && extent.count(it->second) == 0) {
          work.push_back(it->second);
        }
      }
    }
    return extent;
  }

  const Summary& summarize(std::uint64_t leader) {
    if (const auto it = summaries_.find(leader); it != summaries_.end()) {
      return it->second;
    }
    if (summarizing_.count(leader) != 0) {
      // Recursive call chain: the in-flight frame answers conservatively;
      // the outer frame's memoized summary subsumes this.
      static const Summary kRecursive = conservative_summary();
      return kRecursive;
    }
    const auto bit = block_by_leader_.find(leader);
    if (bit == block_by_leader_.end()) {
      // Target is not a decoded block leader (outside the region, or inside
      // another instruction): nothing is provable about it.
      return summaries_.emplace(leader, conservative_summary()).first->second;
    }
    summarizing_.insert(leader);
    const std::set<std::size_t> extent = extent_of(bit->second);

    Summary s;
    // Pass 1: syntactic may-write set (transitive through nested callees).
    for (const std::size_t b : extent) {
      for (std::uint64_t addr : cfg_.blocks[b].insns) {
        const isa::Instruction* insn = insn_at(addr);
        if (insn == nullptr) continue;
        if (insn->op == Op::kCallRel) {
          const std::uint64_t target =
              addr + insn->length + static_cast<std::uint64_t>(insn->imm);
          const Summary& nested = summarize(target);
          if (nested.conservative) {
            s.conservative = true;
          } else {
            for (std::size_t i = 0; i < isa::kNumGprs; ++i) {
              s.writes[i] = s.writes[i] || nested.writes[i];
            }
          }
        } else if (insn->op == Op::kCallRax || insn->op == Op::kHostCall ||
                   insn->op == Op::kJmpReg) {
          s.conservative = true;
        } else {
          const isa::RegEffects fx = isa::reg_effects(*insn);
          for (std::uint8_t w = 0; w < fx.num_writes; ++w) {
            if (fx.writes[w].cls == isa::RegClass::kGpr) {
              s.writes[fx.writes[w].index] = true;
            }
          }
        }
        if (s.conservative) break;
      }
      if (s.conservative) break;
    }

    if (s.conservative) {
      s = conservative_summary();
    } else {
      // Pass 2: exit value sets from an all-⊤ entry (over-approximates
      // every calling context), joined over the callee's RET blocks.
      std::map<std::size_t, RegState> in_states;
      in_states[bit->second] = RegState::entry_top();
      std::set<std::size_t> worklist{bit->second};
      RegState ret_join;
      run_fixpoint(&extent, in_states, worklist, /*interprocedural=*/false,
                   &ret_join);
      for (std::size_t i = 0; i < isa::kNumGprs; ++i) {
        if (!s.writes[i]) continue;
        s.exit[i] =
            ret_join.reachable ? ret_join.regs[i] : ValueSet::top();
      }
    }
    summarizing_.erase(leader);
    return summaries_.emplace(leader, std::move(s)).first->second;
  }

  const Cfg& cfg_;
  std::map<std::uint64_t, std::size_t> block_by_leader_;
  std::map<std::uint64_t, Summary> summaries_;
  std::set<std::uint64_t> summarizing_;
  std::size_t block_passes_ = 0;
};

}  // namespace

DataflowResult analyze_dataflow(const Cfg& cfg, std::uint64_t entry) {
  return Engine(cfg).run(entry);
}

}  // namespace lzp::analysis
