// The static rewrite-safety analyzer: classifies every candidate syscall
// site in a text region with a verdict that an eager rewriter can act on.
//
// A *candidate* is any offset whose two bytes encode SYSCALL/SYSENTER (the
// raw-scan superset — by construction no real site can be missing from it).
// The verdict lattice, ordered from provably patchable to unknowable:
//
//   SAFE                      proven-reachable instruction, window untouched
//                             by any other reachable instruction or branch
//   UNSAFE_JUMP_INTO_WINDOW   reachable, but a direct branch targets the
//                             middle of the 2-byte patch window
//   UNSAFE_OVERLAP            the 0F 05 pair lies inside (or across) another
//                             reachable instruction — rewriting corrupts it
//   UNKNOWN                   not proven reachable by direct control flow:
//                             data, dead code, or code reached only through
//                             computed jumps (the §II-B gap; lazy/SUD
//                             discovery is the only sound interposer here)
//
// SAFE is sound under the CFG's two assumptions (computed transfers land on
// instruction boundaries; returns follow call discipline): a SAFE site is a
// genuine syscall instruction whose in-place 2-byte rewrite cannot be
// observed by any other statically known execution path. The randomized
// differential suite (tests/analysis_test.cpp) checks this against assembler
// ground truth, and the runtime cross-checker (analysis/crosscheck.hpp)
// checks it against kernel-assisted discovery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/cfg.hpp"

namespace lzp::analysis {

enum class Verdict : std::uint8_t {
  kSafe = 0,
  kUnsafeJumpIntoWindow,
  kUnsafeOverlap,
  kUnknown,
};
inline constexpr std::size_t kNumVerdicts = 4;

[[nodiscard]] constexpr std::string_view to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kSafe: return "SAFE";
    case Verdict::kUnsafeJumpIntoWindow: return "UNSAFE_JUMP_INTO_WINDOW";
    case Verdict::kUnsafeOverlap: return "UNSAFE_OVERLAP";
    case Verdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

// The syscall/sysenter encoding is 2 bytes, and so is its CALL RAX patch.
inline constexpr std::uint64_t kRewriteWindow = 2;

struct SiteVerdict {
  std::uint64_t addr = 0;
  Verdict verdict = Verdict::kUnknown;
  bool is_sysenter = false;
  // Supporting evidence (absolute addresses), filled per verdict:
  // UNSAFE_OVERLAP: the reachable instruction(s) whose span hits the window.
  // UNSAFE_JUMP_INTO_WINDOW: the mid-window target address.
  std::vector<std::uint64_t> evidence;
  // Superset decodings that read through this window (reporting only; a
  // desynchronized sweep would tokenize the site this many other ways).
  std::size_t superset_overlaps = 0;
};

struct Analysis {
  Cfg cfg;
  Superset superset;
  std::vector<SiteVerdict> sites;  // sorted by addr, one per candidate

  [[nodiscard]] std::size_t count(Verdict verdict) const;
  [[nodiscard]] std::vector<std::uint64_t> sites_with(Verdict verdict) const;
  [[nodiscard]] const SiteVerdict* find_site(std::uint64_t addr) const;
};

// Runs superset disassembly + recursive descent over `bytes` and classifies
// every candidate window. `entry` is the program's absolute entry point.
[[nodiscard]] Analysis analyze(std::span<const std::uint8_t> bytes,
                               std::uint64_t base, std::uint64_t entry,
                               std::span<const std::uint64_t> extra_roots = {});

}  // namespace lzp::analysis
