#include "analysis/analyzer.hpp"

#include <algorithm>

namespace lzp::analysis {

std::size_t Analysis::count(Verdict verdict) const {
  return static_cast<std::size_t>(
      std::count_if(sites.begin(), sites.end(), [&](const SiteVerdict& site) {
        return site.verdict == verdict;
      }));
}

std::vector<std::uint64_t> Analysis::sites_with(Verdict verdict) const {
  std::vector<std::uint64_t> out;
  for (const SiteVerdict& site : sites) {
    if (site.verdict == verdict) out.push_back(site.addr);
  }
  return out;
}

const SiteVerdict* Analysis::find_site(std::uint64_t addr) const {
  const auto it = std::lower_bound(
      sites.begin(), sites.end(), addr,
      [](const SiteVerdict& site, std::uint64_t a) { return site.addr < a; });
  return it != sites.end() && it->addr == addr ? &*it : nullptr;
}

Analysis analyze(std::span<const std::uint8_t> bytes, std::uint64_t base,
                 std::uint64_t entry,
                 std::span<const std::uint64_t> extra_roots) {
  Analysis analysis;
  analysis.cfg = build_cfg(bytes, base, entry, extra_roots);
  analysis.superset = build_superset(bytes, base);

  for (std::size_t offset = 0; offset + 1 < bytes.size(); ++offset) {
    if (!isa::is_syscall_bytes(bytes.subspan(offset))) continue;
    SiteVerdict site;
    site.addr = base + offset;
    site.is_sysenter = bytes[offset + 1] == isa::kByteSysenter2;
    site.superset_overlaps =
        analysis.superset.overlapping_starts(site.addr, kRewriteWindow).size();

    // Precedence: overlap beats everything (the window's bytes belong to
    // another statically known instruction, so any patch corrupts it), then
    // reachability, then mid-window branch targets.
    std::vector<std::uint64_t> overlap =
        analysis.cfg.insns_overlapping_window(site.addr, kRewriteWindow);
    if (!overlap.empty()) {
      site.verdict = Verdict::kUnsafeOverlap;
      site.evidence = std::move(overlap);
    } else if (!analysis.cfg.is_reachable_insn(site.addr)) {
      site.verdict = Verdict::kUnknown;
    } else if (analysis.cfg.jump_targets.count(site.addr + 1) != 0) {
      site.verdict = Verdict::kUnsafeJumpIntoWindow;
      site.evidence.push_back(site.addr + 1);
    } else {
      site.verdict = Verdict::kSafe;
    }
    analysis.sites.push_back(std::move(site));
  }
  return analysis;
}

}  // namespace lzp::analysis
