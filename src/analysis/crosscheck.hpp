// Runtime cross-checker: static verdicts vs kernel-assisted ground truth.
//
// lazypoline's slow path is an oracle the static analyzer can be scored
// against: every SUD SIGSYS names the exact address of a syscall instruction
// that *really executed* — the kernel cannot be desynchronized. A
// CrossChecker is loaded with one or more Analysis results and then observes
// the runtime:
//
//   * every kernel-verified discovery is matched against the static verdict
//     at that address (agreement for SAFE, measured §II-B disagreement for
//     UNSAFE_OVERLAP, the expected gap for UNKNOWN, exhaustiveness escape
//     for addresses outside every analyzed region — JIT pages, stubs);
//   * a kernel-verified execution *inside* a SAFE window, or a fast-path
//     entry from a never-verified non-SAFE site, is a soundness violation —
//     the verified-eager rewriter patched something it should not have.
//
// Each observation is also forwarded to the machine's trace sink
// (TraceSink::on_crosscheck), so the flight recorder and metrics registry
// carry the per-site agreement record the EXPERIMENTS table is built from.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "analysis/analyzer.hpp"
#include "kernel/machine.hpp"

namespace lzp::analysis {

enum class CrosscheckOutcome : std::uint8_t {
  kAgreeSafe = 0,        // kernel verified a SAFE-classified site
  kConfirmedUnknown,     // kernel verified an UNKNOWN site (the static gap)
  kOverlapExecuted,      // kernel verified a site classified UNSAFE_OVERLAP
  kJumpWindowExecuted,   // kernel verified an UNSAFE_JUMP_INTO_WINDOW site
  kUnanalyzedRegion,     // site outside every analyzed region (JIT, stubs)
  kSafeWindowViolation,  // execution landed strictly inside a SAFE window
  kEagerUnsafeFast,      // fast entry from a non-SAFE, never-verified site
};
inline constexpr std::size_t kNumCrosscheckOutcomes = 7;

[[nodiscard]] constexpr std::string_view to_string(
    CrosscheckOutcome outcome) noexcept {
  switch (outcome) {
    case CrosscheckOutcome::kAgreeSafe: return "agree-safe";
    case CrosscheckOutcome::kConfirmedUnknown: return "confirmed-unknown";
    case CrosscheckOutcome::kOverlapExecuted: return "overlap-executed";
    case CrosscheckOutcome::kJumpWindowExecuted: return "jump-window-executed";
    case CrosscheckOutcome::kUnanalyzedRegion: return "unanalyzed-region";
    case CrosscheckOutcome::kSafeWindowViolation: return "safe-window-violation";
    case CrosscheckOutcome::kEagerUnsafeFast: return "eager-unsafe-fast";
  }
  return "?";
}

class CrossChecker {
 public:
  // Loads the static verdicts of one analyzed region. Regions may be added
  // before or between runs; overlapping re-registration overwrites.
  void add_region(const Analysis& analysis);

  // The SUD slow path verified a syscall instruction at `site` (SIGSYS
  // ip_after - 2). Classifies, records, and emits the trace probe.
  void observe_kernel_verified(kern::Machine& machine, const kern::Task& task,
                               std::uint64_t site);
  // The generic entry was reached from an already-rewritten site (fast
  // path). Only violations emit trace probes — SAFE fast entries are the
  // normal case and would swamp the ring.
  void observe_fast_entry(kern::Machine& machine, const kern::Task& task,
                          std::uint64_t site);

  struct SiteRecord {
    Verdict verdict = Verdict::kUnknown;
    bool analyzed = false;  // false: address outside every loaded region
    std::uint64_t kernel_verified_hits = 0;
    std::uint64_t fast_hits = 0;
  };

  [[nodiscard]] const std::map<std::uint64_t, SiteRecord>& sites() const {
    return sites_;
  }
  [[nodiscard]] std::uint64_t outcome_count(CrosscheckOutcome outcome) const {
    return counts_[static_cast<std::size_t>(outcome)];
  }
  [[nodiscard]] std::uint64_t kernel_verified_total() const {
    return kernel_verified_total_;
  }
  // The gate the verified-eager mode must keep at zero: any dynamic
  // observation contradicting a SAFE verdict.
  [[nodiscard]] std::uint64_t safe_disagreements() const {
    return outcome_count(CrosscheckOutcome::kSafeWindowViolation) +
           outcome_count(CrosscheckOutcome::kEagerUnsafeFast);
  }

  // Two-column outcome table (metrics::counters_table shape).
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string json() const;

 private:
  void record(kern::Machine& machine, const kern::Task& task,
              std::uint64_t site, Verdict verdict, CrosscheckOutcome outcome);

  std::map<std::uint64_t, SiteRecord> sites_;
  std::set<std::uint64_t> safe_sites_;  // for the inside-window check
  std::uint64_t counts_[kNumCrosscheckOutcomes] = {};
  std::uint64_t kernel_verified_total_ = 0;
};

}  // namespace lzp::analysis
