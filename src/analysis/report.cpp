#include "analysis/report.hpp"

#include <algorithm>
#include <set>

#include "base/strings.hpp"
#include "isa/decode.hpp"
#include "metrics/json.hpp"

namespace lzp::analysis {

Accuracy evaluate(const Analysis& analysis, const isa::Program& program) {
  Accuracy accuracy;
  const auto truth_vec = program.true_syscall_addresses();
  const std::set<std::uint64_t> truth(truth_vec.begin(), truth_vec.end());

  std::set<std::uint64_t> safe;
  for (const SiteVerdict& site : analysis.sites) {
    if (site.verdict == Verdict::kSafe) safe.insert(site.addr);
  }
  for (std::uint64_t addr : safe) {
    (truth.count(addr) != 0 ? accuracy.safe_true : accuracy.safe_false)
        .push_back(addr);
  }
  for (std::uint64_t addr : truth) {
    if (safe.count(addr) == 0) accuracy.not_eager.push_back(addr);
  }
  return accuracy;
}

std::string annotated_listing(const Analysis& analysis,
                              std::span<const std::uint8_t> bytes) {
  std::string out;
  const std::uint64_t base = analysis.cfg.base;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::uint64_t addr = base + offset;
    auto decoded = isa::decode(bytes.subspan(offset));
    // Follow the descent's reading where one exists so the listing shows the
    // stream the analyzer reasoned about; fall back to linear decode.
    const auto reach_it = analysis.cfg.reachable.find(addr);
    const bool reachable = reach_it != analysis.cfg.reachable.end();
    const std::size_t length =
        reachable ? reach_it->second.insn.length : (decoded ? decoded.value().length : 1);

    out += reachable ? "* " : "  ";
    out += hex_u64(addr);
    out += ":  ";
    std::string encoded;
    for (std::size_t i = 0; i < length && offset + i < bytes.size(); ++i) {
      if (i != 0) encoded += ' ';
      encoded += hex_byte(bytes[offset + i]);
    }
    out += pad_right(encoded, 30);
    out += decoded ? decoded.value().to_string()
                   : std::string(".byte ") + hex_byte(bytes[offset]);
    // Verdicts for every candidate window beginning inside this line.
    for (std::size_t i = 0; i < length && offset + i < bytes.size(); ++i) {
      if (const SiteVerdict* site = analysis.find_site(addr + i)) {
        out += "    <- ";
        out += to_string(site->verdict);
        if (i != 0) {
          out += " @+";
          out += std::to_string(i);
        }
      }
    }
    out += '\n';
    offset += length;
  }
  return out;
}

std::string json_report(const Analysis& analysis,
                        const std::string& region_name) {
  using metrics::JsonObject;

  std::vector<std::string> site_objs;
  site_objs.reserve(analysis.sites.size());
  for (const SiteVerdict& site : analysis.sites) {
    JsonObject obj;
    obj.add("addr", hex_u64(site.addr))
        .add("insn", site.is_sysenter ? "sysenter" : "syscall")
        .add("verdict", to_string(site.verdict))
        .add("superset_overlaps",
             static_cast<std::uint64_t>(site.superset_overlaps));
    std::vector<std::string> evidence;
    evidence.reserve(site.evidence.size());
    for (std::uint64_t addr : site.evidence) {
      evidence.push_back('"' + hex_u64(addr) + '"');
    }
    obj.add_raw("evidence", metrics::json_array(evidence));
    site_objs.push_back(obj.render());
  }

  JsonObject cfg_obj;
  cfg_obj.add("reachable_insns",
              static_cast<std::uint64_t>(analysis.cfg.reachable.size()))
      .add("basic_blocks", static_cast<std::uint64_t>(analysis.cfg.blocks.size()))
      .add("jump_targets",
           static_cast<std::uint64_t>(analysis.cfg.jump_targets.size()))
      .add("computed_transfers",
           static_cast<std::uint64_t>(analysis.cfg.computed_transfers.size()))
      .add("decode_error_paths",
           static_cast<std::uint64_t>(analysis.cfg.decode_error_addrs.size()))
      .add("reachable_bytes",
           static_cast<std::uint64_t>(analysis.cfg.reachable_bytes()))
      .add("region_bytes", analysis.cfg.size)
      .add("superset_decodings",
           static_cast<std::uint64_t>(analysis.superset.valid_decodings()));

  JsonObject verdicts;
  verdicts.add("safe", static_cast<std::uint64_t>(analysis.count(Verdict::kSafe)))
      .add("unsafe_overlap",
           static_cast<std::uint64_t>(analysis.count(Verdict::kUnsafeOverlap)))
      .add("unsafe_jump_into_window",
           static_cast<std::uint64_t>(
               analysis.count(Verdict::kUnsafeJumpIntoWindow)))
      .add("unknown",
           static_cast<std::uint64_t>(analysis.count(Verdict::kUnknown)));

  JsonObject root;
  root.add("region", region_name)
      .add("base", hex_u64(analysis.cfg.base))
      .add_raw("cfg", cfg_obj.render())
      .add_raw("verdicts", verdicts.render())
      .add_raw("sites", metrics::json_array(site_objs));
  return root.render();
}

std::string verdict_summary(const Analysis& analysis) {
  std::string out;
  out += "safe=" + std::to_string(analysis.count(Verdict::kSafe));
  out += " overlap=" + std::to_string(analysis.count(Verdict::kUnsafeOverlap));
  out += " jump=" +
         std::to_string(analysis.count(Verdict::kUnsafeJumpIntoWindow));
  out += " unknown=" + std::to_string(analysis.count(Verdict::kUnknown));
  return out;
}

}  // namespace lzp::analysis
