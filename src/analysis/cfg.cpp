#include "analysis/cfg.hpp"

#include <algorithm>

namespace lzp::analysis {
namespace {

// Direct (statically resolvable) successor model for one instruction.
struct Succ {
  bool fallthrough = false;
  bool has_target = false;
  std::uint64_t target = 0;   // absolute, valid when has_target
  bool computed = false;      // JMP_REG / CALL_RAX
  bool block_end = false;     // ends a basic block
};

Succ successors(const isa::Instruction& insn, std::uint64_t addr) {
  const std::uint64_t next = addr + insn.length;
  Succ s;
  switch (insn.op) {
    case isa::Op::kJmpRel:
      s.has_target = true;
      s.target = next + static_cast<std::uint64_t>(insn.imm);
      s.block_end = true;
      break;
    case isa::Op::kJz:
    case isa::Op::kJnz:
    case isa::Op::kJlt:
    case isa::Op::kJgt:
      s.fallthrough = true;
      s.has_target = true;
      s.target = next + static_cast<std::uint64_t>(insn.imm);
      s.block_end = true;
      break;
    case isa::Op::kCallRel:
      // Call discipline: the callee returns to the fallthrough.
      s.fallthrough = true;
      s.has_target = true;
      s.target = next + static_cast<std::uint64_t>(insn.imm);
      break;
    case isa::Op::kCallRax:
      // Computed call target; execution resumes at the fallthrough.
      s.fallthrough = true;
      s.computed = true;
      break;
    case isa::Op::kJmpReg:
      s.computed = true;
      s.block_end = true;
      break;
    case isa::Op::kRet:
    case isa::Op::kHlt:
      s.block_end = true;
      break;
    case isa::Op::kTrap:
      // A SIGTRAP handler may resume past the breakpoint.
      s.fallthrough = true;
      s.block_end = true;
      break;
    default:
      s.fallthrough = true;
      break;
  }
  return s;
}

}  // namespace

std::vector<std::uint64_t> Cfg::insns_overlapping_window(
    std::uint64_t addr, std::uint64_t window) const {
  std::vector<std::uint64_t> out;
  const std::uint64_t lo =
      addr > isa::kMaxInsnLength ? addr - isa::kMaxInsnLength : 0;
  for (auto it = reachable.lower_bound(lo);
       it != reachable.end() && it->first < addr + window; ++it) {
    const std::uint64_t start = it->first;
    const std::uint64_t end = start + it->second.insn.length;
    if (start == addr) continue;
    if (end > addr) out.push_back(start);
  }
  return out;
}

const BasicBlock* Cfg::block_containing(std::uint64_t addr) const {
  for (const BasicBlock& block : blocks) {
    if (addr >= block.start && addr < block.end) return &block;
  }
  return nullptr;
}

std::size_t Cfg::reachable_bytes() const {
  return static_cast<std::size_t>(
      std::count(byte_reachable.begin(), byte_reachable.end(), true));
}

Cfg build_cfg(std::span<const std::uint8_t> bytes, std::uint64_t base,
              std::uint64_t entry, std::span<const std::uint64_t> extra_roots) {
  Cfg cfg;
  cfg.base = base;
  cfg.size = bytes.size();
  cfg.byte_reachable.assign(bytes.size(), false);

  const auto in_range = [&](std::uint64_t addr) {
    return addr >= base && addr < base + bytes.size();
  };

  std::vector<std::uint64_t> worklist;
  std::set<std::uint64_t> decode_errors;
  if (in_range(entry)) worklist.push_back(entry);
  for (std::uint64_t root : extra_roots) {
    if (in_range(root)) worklist.push_back(root);
  }

  while (!worklist.empty()) {
    const std::uint64_t addr = worklist.back();
    worklist.pop_back();
    if (cfg.reachable.count(addr) != 0) continue;
    auto decoded = isa::decode(bytes.subspan(addr - base));
    if (!decoded) {
      decode_errors.insert(addr);
      continue;
    }
    const isa::Instruction insn = decoded.value();
    cfg.reachable.emplace(addr, ReachableInsn{addr, insn});
    for (std::uint64_t i = 0; i < insn.length; ++i) {
      cfg.byte_reachable[addr - base + i] = true;
    }

    const Succ succ = successors(insn, addr);
    if (succ.computed) cfg.computed_transfers.push_back(addr);
    if (succ.has_target) {
      cfg.jump_targets.insert(succ.target);
      if (in_range(succ.target)) worklist.push_back(succ.target);
    }
    if (succ.fallthrough && in_range(addr + insn.length)) {
      worklist.push_back(addr + insn.length);
    }
  }
  cfg.decode_error_addrs.assign(decode_errors.begin(), decode_errors.end());
  std::sort(cfg.computed_transfers.begin(), cfg.computed_transfers.end());

  // Basic blocks: walk the reachable instructions in address order, starting
  // a new block at jump targets and after block-ending instructions, and
  // closing on discontinuities (which include overlapping decodings — two
  // reachable streams through the same bytes never share a block).
  BasicBlock current;
  bool open = false;
  auto close = [&] {
    if (open) cfg.blocks.push_back(current);
    open = false;
  };
  for (const auto& [addr, reach] : cfg.reachable) {
    const bool is_leader = cfg.jump_targets.count(addr) != 0;
    if (open && (addr != current.end || is_leader)) close();
    if (!open) {
      current = BasicBlock{};
      current.start = addr;
      current.end = addr;
      open = true;
    }
    current.insns.push_back(addr);
    current.end = addr + reach.insn.length;

    const Succ succ = successors(reach.insn, addr);
    if (succ.computed) current.computed_successor = true;
    if (succ.block_end) {
      if (succ.has_target && cfg.reachable.count(succ.target) != 0) {
        current.succs.push_back(succ.target);
      }
      if (succ.fallthrough && cfg.reachable.count(current.end) != 0) {
        current.succs.push_back(current.end);
      }
      if (succ.fallthrough && decode_errors.count(current.end) != 0) {
        current.ends_in_decode_error = true;
      }
      close();
    } else if (decode_errors.count(current.end) != 0) {
      current.ends_in_decode_error = true;
      close();
    }
  }
  close();

  // Fallthrough edges between adjacent blocks split by a leader boundary.
  for (BasicBlock& block : cfg.blocks) {
    if (block.succs.empty() && !block.computed_successor &&
        !block.ends_in_decode_error) {
      const auto it = cfg.reachable.find(block.end);
      const bool last_falls_through =
          !block.insns.empty() &&
          successors(cfg.reachable.at(block.insns.back()).insn,
                     block.insns.back())
              .fallthrough;
      if (it != cfg.reachable.end() && last_falls_through) {
        block.succs.push_back(block.end);
      }
    }
  }
  return cfg;
}

std::vector<std::uint64_t> Superset::overlapping_starts(
    std::uint64_t addr, std::size_t window) const {
  std::vector<std::uint64_t> out;
  if (addr < base) return out;
  const std::uint64_t offset = addr - base;
  const std::uint64_t lo =
      offset > isa::kMaxInsnLength ? offset - isa::kMaxInsnLength : 0;
  for (std::uint64_t start = lo;
       start < offset + window && start < at.size(); ++start) {
    if (start == offset) continue;
    const SupersetInsn& insn = at[start];
    if (insn.valid && start + insn.length > offset) {
      out.push_back(base + start);
    }
  }
  return out;
}

std::size_t Superset::valid_decodings() const {
  return static_cast<std::size_t>(
      std::count_if(at.begin(), at.end(),
                    [](const SupersetInsn& insn) { return insn.valid; }));
}

Superset build_superset(std::span<const std::uint8_t> bytes,
                        std::uint64_t base) {
  Superset superset;
  superset.base = base;
  superset.at.resize(bytes.size());
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    auto decoded = isa::decode(bytes.subspan(offset));
    if (!decoded) continue;
    superset.at[offset] = {true, decoded.value().length, decoded.value().op};
  }
  return superset;
}

}  // namespace lzp::analysis
