#include "analysis/crosscheck.hpp"

#include "base/strings.hpp"
#include "metrics/json.hpp"
#include "metrics/report.hpp"

namespace lzp::analysis {

void CrossChecker::add_region(const Analysis& analysis) {
  for (const SiteVerdict& site : analysis.sites) {
    SiteRecord& record = sites_[site.addr];
    record.verdict = site.verdict;
    record.analyzed = true;
    if (site.verdict == Verdict::kSafe) safe_sites_.insert(site.addr);
  }
}

void CrossChecker::record(kern::Machine& machine, const kern::Task& task,
                          std::uint64_t site, Verdict verdict,
                          CrosscheckOutcome outcome) {
  ++counts_[static_cast<std::size_t>(outcome)];
  if (auto* sink = machine.trace_sink()) {
    sink->on_crosscheck(task, site, static_cast<std::uint8_t>(verdict),
                        static_cast<std::uint8_t>(outcome));
  }
}

void CrossChecker::observe_kernel_verified(kern::Machine& machine,
                                           const kern::Task& task,
                                           std::uint64_t site) {
  ++kernel_verified_total_;

  // Execution strictly inside a SAFE window: the 2-byte patch would have
  // been observed mid-instruction. This must never happen — it falsifies
  // the verdict the eager rewriter acted on.
  if (site != 0 && safe_sites_.count(site - 1) != 0) {
    SiteRecord& inside = sites_[site];
    ++inside.kernel_verified_hits;
    record(machine, task, site, Verdict::kSafe,
           CrosscheckOutcome::kSafeWindowViolation);
    return;
  }

  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.analyzed) {
    SiteRecord& fresh = sites_[site];
    ++fresh.kernel_verified_hits;
    record(machine, task, site, Verdict::kUnknown,
           CrosscheckOutcome::kUnanalyzedRegion);
    return;
  }

  SiteRecord& known = it->second;
  ++known.kernel_verified_hits;
  CrosscheckOutcome outcome = CrosscheckOutcome::kConfirmedUnknown;
  switch (known.verdict) {
    case Verdict::kSafe: outcome = CrosscheckOutcome::kAgreeSafe; break;
    case Verdict::kUnknown: outcome = CrosscheckOutcome::kConfirmedUnknown; break;
    case Verdict::kUnsafeOverlap:
      outcome = CrosscheckOutcome::kOverlapExecuted;
      break;
    case Verdict::kUnsafeJumpIntoWindow:
      outcome = CrosscheckOutcome::kJumpWindowExecuted;
      break;
  }
  record(machine, task, site, known.verdict, outcome);
}

void CrossChecker::observe_fast_entry(kern::Machine& machine,
                                      const kern::Task& task,
                                      std::uint64_t site) {
  SiteRecord& rec = sites_[site];
  ++rec.fast_hits;
  // A rewritten site reached without any prior kernel verification must be
  // an eager rewrite, which is only sound for SAFE verdicts.
  if (rec.kernel_verified_hits == 0 &&
      (!rec.analyzed || rec.verdict != Verdict::kSafe)) {
    record(machine, task, site, rec.analyzed ? rec.verdict : Verdict::kUnknown,
           CrosscheckOutcome::kEagerUnsafeFast);
  }
}

std::string CrossChecker::summary() const {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  rows.emplace_back("kernel-verified sites (total hits)",
                    kernel_verified_total_);
  for (std::size_t i = 0; i < kNumCrosscheckOutcomes; ++i) {
    rows.emplace_back(
        std::string(to_string(static_cast<CrosscheckOutcome>(i))), counts_[i]);
  }
  return metrics::counters_table(rows);
}

std::string CrossChecker::json() const {
  using metrics::JsonObject;
  JsonObject outcomes;
  for (std::size_t i = 0; i < kNumCrosscheckOutcomes; ++i) {
    outcomes.add(to_string(static_cast<CrosscheckOutcome>(i)), counts_[i]);
  }

  std::vector<std::string> site_objs;
  for (const auto& [addr, record] : sites_) {
    if (record.kernel_verified_hits == 0 && record.fast_hits == 0) continue;
    JsonObject obj;
    obj.add("addr", hex_u64(addr))
        .add("verdict",
             record.analyzed ? to_string(record.verdict) : "UNANALYZED")
        .add("kernel_verified_hits", record.kernel_verified_hits)
        .add("fast_hits", record.fast_hits);
    site_objs.push_back(obj.render());
  }

  JsonObject root;
  root.add("kernel_verified_total", kernel_verified_total_)
      .add("safe_disagreements", safe_disagreements())
      .add_raw("outcomes", outcomes.render())
      .add_raw("observed_sites", metrics::json_array(site_objs));
  return root.render();
}

}  // namespace lzp::analysis
