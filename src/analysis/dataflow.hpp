// Interprocedural value-flow analysis over the recursive-descent CFG.
//
// A forward abstract interpretation computing, per reachable instruction, a
// value-set lattice for the syscall-relevant registers:
//
//         ⊤  (any value)
//         |
//   {c0..ck}  constant sets, |set| <= kMaxValues
//         |
//         ⊥  (unreachable / no value yet)
//
// The pass tracks all 16 GPRs internally (a copy from an untracked register
// would otherwise lose precision) and reports the five the SFIP pipeline
// cares about: rax (the syscall number) and the first four argument
// registers rdi/rsi/rdx/r10. It models the ISA's constant-producing idioms
// (mov ri / mov ri32 / xor-self / sub-self), register copies, wrapping
// add/sub/mul/xor arithmetic, and a bounded abstract stack for push/pop
// pairs. Loads, gs reads, x87/xmm moves and divisions conservatively
// produce ⊤.
//
// INTERPROCEDURAL MODEL — callee summaries (documented choice, vs inlining
// one level): direct calls (CALL rel32) are handled with memoized per-callee
// summaries computed over the callee's block extent with an all-⊤ entry
// state. A summary records which GPRs the callee may write and the joined
// value sets those registers hold at its RET instructions; registers the
// callee provably never writes keep the caller's values across the call.
// Because a summary is computed from a ⊤ entry, it over-approximates every
// calling context, so applying it at any call site is sound. In addition,
// the whole-program fixpoint joins each call site's state into the callee's
// entry block, so instructions *inside* callees see the union of their
// actual calling contexts (call-strings of length zero). Recursion,
// computed transfers (JMP reg / CALL rax) and host-call escapes degrade the
// affected summary to clobber-everything, never to unsoundness.
//
// Soundness posture matches the analyzer's: every concrete execution value
// is a member of the reported set, or the set is ⊤. Consumers may act on a
// constant set only in ways that stay safe if the program never runs the
// instruction (⊥ means "not proven reachable with a value").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "analysis/cfg.hpp"
#include "isa/insn.hpp"

namespace lzp::analysis {

// Bounded constant-set lattice element.
class ValueSet {
 public:
  // Widening threshold: a set that would exceed this many members becomes ⊤.
  static constexpr std::size_t kMaxValues = 8;

  ValueSet() = default;  // ⊥
  [[nodiscard]] static ValueSet bottom() { return ValueSet{}; }
  [[nodiscard]] static ValueSet top() {
    ValueSet v;
    v.kind_ = Kind::kTop;
    return v;
  }
  [[nodiscard]] static ValueSet constant(std::uint64_t value) {
    ValueSet v;
    v.kind_ = Kind::kConsts;
    v.values_.insert(value);
    return v;
  }
  [[nodiscard]] static ValueSet from_values(std::set<std::uint64_t> values) {
    if (values.empty()) return bottom();
    if (values.size() > kMaxValues) return top();
    ValueSet v;
    v.kind_ = Kind::kConsts;
    v.values_ = std::move(values);
    return v;
  }

  [[nodiscard]] bool is_bottom() const { return kind_ == Kind::kBottom; }
  [[nodiscard]] bool is_top() const { return kind_ == Kind::kTop; }
  [[nodiscard]] bool is_constant_set() const { return kind_ == Kind::kConsts; }
  // Valid only when is_constant_set().
  [[nodiscard]] const std::set<std::uint64_t>& values() const {
    return values_;
  }

  // Lattice join (in place); returns true if this element changed.
  bool join(const ValueSet& other);

  // Pointwise binary operation over two constant sets with widening; ⊤ or ⊥
  // operands propagate (⊥ wins: the result is unreachable).
  template <typename Fn>
  [[nodiscard]] static ValueSet binop(const ValueSet& a, const ValueSet& b,
                                      Fn&& fn) {
    if (a.is_bottom() || b.is_bottom()) return bottom();
    if (a.is_top() || b.is_top()) return top();
    std::set<std::uint64_t> out;
    for (std::uint64_t x : a.values_) {
      for (std::uint64_t y : b.values_) {
        out.insert(fn(x, y));
        if (out.size() > kMaxValues) return top();
      }
    }
    return from_values(std::move(out));
  }

  friend bool operator==(const ValueSet&, const ValueSet&) = default;

 private:
  enum class Kind : std::uint8_t { kBottom, kConsts, kTop };
  Kind kind_ = Kind::kBottom;
  std::set<std::uint64_t> values_;
};

// Registers reported per instruction: syscall number + first four args
// (the argument subset the policy layer can turn into cBPF predicates).
inline constexpr std::array<isa::Gpr, 5> kDataflowRegs = {
    isa::Gpr::rax, isa::Gpr::rdi, isa::Gpr::rsi, isa::Gpr::rdx,
    isa::Gpr::r10};

// Value sets at an instruction's *entry* (before it executes), indexed like
// kDataflowRegs.
struct InsnValues {
  std::array<ValueSet, kDataflowRegs.size()> regs;

  [[nodiscard]] const ValueSet& reg(isa::Gpr which) const;
};

struct DataflowResult {
  // Keyed by absolute instruction address; instructions never reached by
  // the fixpoint (e.g. only reachable through a computed transfer) are
  // absent — callers must treat absent as all-⊤.
  std::map<std::uint64_t, InsnValues> at;

  // Diagnostics.
  std::size_t block_passes = 0;       // total block transfers until fixpoint
  std::size_t callee_summaries = 0;   // distinct direct-call summaries
  std::size_t conservative_calls = 0; // summaries degraded to clobber-all

  // ⊤ when the instruction was not recorded.
  [[nodiscard]] ValueSet value_at(std::uint64_t addr, isa::Gpr reg) const;
};

// Runs the fixpoint over `cfg` starting at `entry` (the program entry; it
// must be a block leader, which build_cfg guarantees for its entry point).
[[nodiscard]] DataflowResult analyze_dataflow(const Cfg& cfg,
                                              std::uint64_t entry);

}  // namespace lzp::analysis
