// Reporting over an Analysis: machine-readable JSON (the examples/analyze
// artifact), an annotated objdump-style listing, and the accuracy evaluation
// against assembler ground truth that backs the EXPERIMENTS.md §II-B table.
#pragma once

#include <string>

#include "analysis/analyzer.hpp"
#include "isa/assemble.hpp"

namespace lzp::analysis {

// How the analyzer's SAFE set fares as an *eager rewrite list* against the
// assembler's ground truth (the same contract disasm::evaluate applies to
// the raw/sweep scanners, so the four columns are directly comparable).
struct Accuracy {
  std::vector<std::uint64_t> safe_true;     // SAFE and a genuine site
  std::vector<std::uint64_t> safe_false;    // SAFE but NOT a site: unsound!
  std::vector<std::uint64_t> not_eager;     // genuine sites left to lazy/SUD
                                            // (UNKNOWN / UNSAFE verdicts)

  [[nodiscard]] bool sound() const noexcept { return safe_false.empty(); }
};

[[nodiscard]] Accuracy evaluate(const Analysis& analysis,
                                const isa::Program& program);

// One-line-per-instruction listing of the analyzed region. Each line carries
// the reachability mark ('*' descended, ' ' unproven) and candidate windows
// are annotated with their verdict.
[[nodiscard]] std::string annotated_listing(
    const Analysis& analysis, std::span<const std::uint8_t> bytes);

// Full JSON report: region stats, CFG summary, per-site verdicts with
// evidence. Rendered with metrics::JsonObject (stable key order).
[[nodiscard]] std::string json_report(const Analysis& analysis,
                                      const std::string& region_name);

// Compact per-verdict histogram, e.g. "safe=12 overlap=3 jump=0 unknown=2".
[[nodiscard]] std::string verdict_summary(const Analysis& analysis);

}  // namespace lzp::analysis
