// Typed flight-recorder events.
//
// One POD per observable occurrence on the interposition path, stamped with
// the simulated global cycle counter and the tid it happened on. The a/b/c
// payload slots are typed per event kind (see the enum comments) — a union
// would save nothing (the struct is padded to 40 bytes either way) and would
// complicate the exporter.
#pragma once

#include <cstdint>
#include <string_view>

#include "kernel/task.hpp"
#include "kernel/trace_sink.hpp"

namespace lzp::trace {

enum class EventType : std::uint8_t {
  kSyscallEnter,        // a = nr
  kSyscallExit,         // a = nr, b = result, c = cycle latency (enter->exit)
  kSelectorFlip,        // a = new selector value
  kSignal,              // a = signo, b = code, c = syscall nr (SIGSYS)
  kSiteRewrite,         // a = rewritten site address
  kSeccompDecision,     // a = nr, b = decisive action word
  kDecodeInvalidation,  // a = rip whose cached decode went stale
  kBlockInvalidation,   // a = rip whose cached superblock went stale
  kTraceInvalidation,   // a = head rip of a chained trace with a stale page
  kMechanismInstall,    // mech = the mechanism that finished arming
  kCrosscheck,          // a = site, b = static verdict, c = outcome
  kPolicyDecision,      // a = nr, b = from-state, c = kern::PolicyDecision
  kTaskStart,           // a = entry rip
  kTaskSwitch,
  kClone,               // a = child tid
  kExecve,
  kTaskExit,            // a = exit code
};

[[nodiscard]] constexpr std::string_view to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kSyscallEnter: return "syscall-enter";
    case EventType::kSyscallExit: return "syscall-exit";
    case EventType::kSelectorFlip: return "selector-flip";
    case EventType::kSignal: return "signal";
    case EventType::kSiteRewrite: return "site-rewrite";
    case EventType::kSeccompDecision: return "seccomp-decision";
    case EventType::kDecodeInvalidation: return "decode-invalidation";
    case EventType::kBlockInvalidation: return "block-invalidation";
    case EventType::kTraceInvalidation: return "trace-invalidation";
    case EventType::kMechanismInstall: return "mechanism-install";
    case EventType::kCrosscheck: return "crosscheck";
    case EventType::kPolicyDecision: return "policy-decision";
    case EventType::kTaskStart: return "task-start";
    case EventType::kTaskSwitch: return "task-switch";
    case EventType::kClone: return "clone";
    case EventType::kExecve: return "execve";
    case EventType::kTaskExit: return "task-exit";
  }
  return "?";
}

struct Event {
  EventType type = EventType::kTaskSwitch;
  kern::InterposeMechanism mech = kern::InterposeMechanism::kNone;
  kern::Tid tid = 0;
  // Simulated CPU the event happened on (Task::cpu at emission; always 0
  // outside run_smp). The Perfetto exporter renders one track per CPU.
  unsigned cpu = 0;
  // Machine::total_cycles() at emission — or the task's own cycle counter in
  // a concurrent (SMP) tracer, where the global counter is barrier-stale.
  std::uint64_t cycles = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

}  // namespace lzp::trace
