// Named counters and per-(syscall, mechanism) cycle-latency histograms.
//
// The registry is the aggregated view the flight recorder's event stream
// cannot give once the ring wraps: counters never drop, so per-mechanism
// totals stay exact over arbitrarily long runs. Latencies go into log2
// buckets (bucket i holds samples in [2^i, 2^(i+1))) — the paper's Table II
// spans ~100 cycles (zpoline fast path) to ~30k (ptrace round trip), which
// log2 bucketing resolves with 64 counters and no allocation on the hot
// path. A RunningStats (Welford) per key gives exact mean/stddev alongside.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/stats.hpp"
#include "cpu/trace_cache.hpp"
#include "kernel/smp.hpp"
#include "kernel/trace_sink.hpp"

namespace lzp::trace {

struct LatencyHistogram {
  static constexpr std::size_t kNumBuckets = 64;

  std::array<std::uint64_t, kNumBuckets> buckets{};
  RunningStats stats;

  static constexpr std::size_t bucket_of(std::uint64_t cycles) noexcept {
    if (cycles == 0) return 0;
    std::size_t bucket = 0;
    while (cycles >>= 1) ++bucket;
    return bucket;  // 63 at most for a 64-bit value
  }

  void add(std::uint64_t cycles) noexcept {
    ++buckets[bucket_of(cycles)];
    stats.add(static_cast<double>(cycles));
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t b : buckets) sum += b;
    return sum;
  }

  // Quantile estimate from the log2 buckets: find the bucket holding the
  // q-th sample, then interpolate linearly across the bucket's [2^i, 2^(i+1))
  // span by the sample's rank within the bucket. Exact to within one bucket
  // width — plenty for p50/p95/p99 tails spanning orders of magnitude.
  [[nodiscard]] double quantile(double q) const noexcept {
    const std::uint64_t n = total();
    if (n == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based (q=0 -> first, q=1 -> last).
    const double rank = 1.0 + q * static_cast<double>(n - 1);
    double seen = 0.0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      const double in_bucket = static_cast<double>(buckets[i]);
      if (rank <= seen + in_bucket) {
        const double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
        const double width = i == 0 ? 2.0 : lo;  // bucket 0 holds {0, 1}
        const double frac = (rank - seen) / in_bucket;
        return lo + frac * width;
      }
      seen += in_bucket;
    }
    return static_cast<double>(1ULL << (kNumBuckets - 1));
  }
};

class MetricsRegistry {
 public:
  struct Key {
    std::uint64_t nr;
    kern::InterposeMechanism mech;
    auto operator<=>(const Key&) const = default;
  };

  void bump(const std::string& counter, std::uint64_t delta = 1) {
    counters_[counter] += delta;
  }
  // Stable reference to a counter's storage (std::map nodes never move), so
  // hot probes can cache the slot and skip the string lookup per event.
  // Invalidated only by clear().
  [[nodiscard]] std::uint64_t& counter_slot(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  void record_latency(std::uint64_t nr, kern::InterposeMechanism mech,
                      std::uint64_t cycles) {
    histograms_[Key{nr, mech}].add(cycles);
  }
  // Stable reference for slot caching, as with counter_slot().
  [[nodiscard]] LatencyHistogram& histogram_slot(std::uint64_t nr,
                                                 kern::InterposeMechanism mech) {
    return histograms_[Key{nr, mech}];
  }
  [[nodiscard]] const std::map<Key, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  // nullptr when no sample was ever recorded for the key.
  [[nodiscard]] const LatencyHistogram* histogram(
      std::uint64_t nr, kern::InterposeMechanism mech) const {
    auto it = histograms_.find(Key{nr, mech});
    return it == histograms_.end() ? nullptr : &it->second;
  }

  // Sum of histogram totals for one mechanism across all syscall numbers —
  // the per-mechanism syscall count the acceptance criteria check against
  // the exporter's per-track event counts.
  [[nodiscard]] std::uint64_t mechanism_total(kern::InterposeMechanism mech) const {
    std::uint64_t sum = 0;
    for (const auto& [key, hist] : histograms_) {
      if (key.mech == mech) sum += hist.total();
    }
    return sum;
  }

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<Key, LatencyHistogram> histograms_;
};

// Folds a finished run_smp()'s scheduler statistics into registry counters
// under the "smp." prefix — the bridge that makes the scheduler's steal /
// barrier / shootdown / mailbox accounting visible through the same counter
// surface as everything else (fig5_webservers prints it, BENCH_smp.json
// carries it). Header-only so binaries that only want counters need not link
// the tracer.
inline void record_smp_stats(MetricsRegistry& metrics,
                             const kern::SmpStats& smp) {
  metrics.bump("smp.barriers", smp.barriers);
  metrics.bump("smp.steals", smp.steals);
  metrics.bump("smp.shootdowns", smp.shootdowns);
  metrics.bump("smp.mailbox_signals", smp.mailbox_signals);
  metrics.bump("smp.placements", smp.placement.size());
  for (std::size_t cpu = 0; cpu < smp.cpus.size(); ++cpu) {
    const std::string prefix = "smp.cpu" + std::to_string(cpu);
    metrics.bump(prefix + ".steps", smp.cpus[cpu].steps);
    metrics.bump(prefix + ".slices", smp.cpus[cpu].slices);
    metrics.bump(prefix + ".tasks", smp.cpus[cpu].tasks);
  }
}

// Folds the trace engine's lifetime counters (Machine::trace_cache_totals())
// into registry counters under the "tcache." prefix, the same bridge
// record_smp_stats provides for the scheduler. "tcache.invalidations" is
// intentionally absent: the Tracer counts it per event as traces drop, and a
// run that detaches its probe mid-way would otherwise double-count.
inline void record_trace_cache_stats(MetricsRegistry& metrics,
                                     const cpu::TraceCacheStats& tcache) {
  metrics.bump("tcache.hits", tcache.hits);
  metrics.bump("tcache.misses", tcache.misses);
  metrics.bump("tcache.flushes", tcache.flushes);
  metrics.bump("tcache.traces_built", tcache.traces_built);
  metrics.bump("tcache.recordings_aborted", tcache.recordings_aborted);
  metrics.bump("tcache.chain_follows", tcache.chain_follows);
  metrics.bump("tcache.side_exits", tcache.side_exits);
  metrics.bump("tcache.completions", tcache.completions);
  metrics.bump("tcache.resumes", tcache.resumes);
  metrics.bump("tcache.demotions", tcache.demotions);
  metrics.bump("tcache.fused_fastpaths", tcache.fused_fastpaths);
}

}  // namespace lzp::trace
