#include "trace/tracer.hpp"

#include <string>

#include "analysis/crosscheck.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::trace {
namespace {

std::string mech_counter(std::string_view prefix, kern::InterposeMechanism mech) {
  return std::string(prefix) + "." + std::string(kern::to_string(mech));
}

}  // namespace

void Tracer::attach(kern::Machine& machine) {
  machine_ = &machine;
  machine.set_trace_sink(this);
}

void Tracer::detach(kern::Machine& machine) {
  if (machine.trace_sink() == this) machine.set_trace_sink(nullptr);
  machine_ = nullptr;
}

void Tracer::clear() {
  ring_.clear();
  metrics_.clear();
  open_.clear();
  reset_slot_caches();
}

void Tracer::reset_slot_caches() noexcept {
  syscall_count_slots_.fill(nullptr);
  policy_transitions_slot_ = nullptr;
  policy_violations_slot_ = nullptr;
  policy_state_slots_.clear();
  selector_flip_slot_ = nullptr;
  signals_delivered_slot_ = nullptr;
  sigsys_slot_ = nullptr;
  seccomp_decision_slot_ = nullptr;
  last_hist_ = nullptr;
  last_hist_nr_ = ~0ULL;
  last_hist_mech_ = kern::InterposeMechanism::kNone;
  last_open_ = nullptr;
  last_open_tid_ = 0;
}

std::uint64_t Tracer::now() const noexcept {
  return machine_ == nullptr ? 0 : machine_->total_cycles();
}

std::uint64_t& Tracer::cached_counter(std::uint64_t*& slot, const char* name) {
  if (slot == nullptr) slot = &metrics_.counter_slot(name);
  return *slot;
}

std::vector<Tracer::OpenFrame>& Tracer::open_frames(kern::Tid tid) {
  if (last_open_ == nullptr || last_open_tid_ != tid) {
    last_open_ = &open_[tid];
    last_open_tid_ = tid;
  }
  return *last_open_;
}

void Tracer::push_event(const kern::Task& task, Event event) {
  event.tid = task.tid;
  event.cpu = task.cpu;
  // Concurrent (SMP) tracers stamp with the task's own cycles: the
  // machine-global counter is reconciled only at barriers, and per-task
  // time is what a per-CPU track renders anyway.
  event.cycles = concurrent_ ? task.cycles : now();
  ring_.push(event);
}

void Tracer::on_interpose_enter(const kern::Task& task, std::uint64_t nr,
                                kern::InterposeMechanism mech) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  open_frames(task.tid).push_back(OpenFrame{nr, mech, task.cycles, now()});
  Event event;
  event.type = EventType::kSyscallEnter;
  event.mech = mech;
  event.a = nr;
  push_event(task, event);
}

void Tracer::on_interpose_exit(const kern::Task& task, std::uint64_t nr,
                               kern::InterposeMechanism mech,
                               std::uint64_t result) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  std::uint64_t latency = 0;
  std::vector<OpenFrame>& frames = open_frames(task.tid);
  if (!frames.empty()) {
    // LIFO: nested interposition (a handler's own syscall getting interposed)
    // closes inner frames first.
    const OpenFrame frame = frames.back();
    frames.pop_back();
    latency = task.cycles - frame.enter_task_cycles;
    if (last_hist_ == nullptr || last_hist_nr_ != nr ||
        last_hist_mech_ != mech) {
      last_hist_ = &metrics_.histogram_slot(nr, mech);
      last_hist_nr_ = nr;
      last_hist_mech_ = mech;
    }
    last_hist_->add(latency);
  } else {
    // Exit without a recorded enter: the tracer was enabled mid-syscall.
    metrics_.bump("trace.unmatched_exit");
  }
  std::uint64_t*& count_slot =
      syscall_count_slots_[static_cast<std::size_t>(mech)];
  if (count_slot == nullptr) {
    count_slot = &metrics_.counter_slot(mech_counter("syscalls", mech));
  }
  ++*count_slot;
  Event event;
  event.type = EventType::kSyscallExit;
  event.mech = mech;
  event.a = nr;
  event.b = result;
  event.c = latency;
  push_event(task, event);
}

void Tracer::on_selector_flip(const kern::Task& task, std::uint8_t value) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  ++cached_counter(selector_flip_slot_, "sud.selector_flips");
  Event event;
  event.type = EventType::kSelectorFlip;
  event.a = value;
  push_event(task, event);
}

void Tracer::on_site_rewrite(const kern::Task& task, std::uint64_t site_addr) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  metrics_.bump("zpoline.site_rewrites");
  Event event;
  event.type = EventType::kSiteRewrite;
  event.a = site_addr;
  push_event(task, event);
}

void Tracer::on_signal_delivery(const kern::Task& task,
                                const kern::SigInfo& info) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  ++cached_counter(signals_delivered_slot_, "signals.delivered");
  if (info.signo == kern::kSigsys) {
    ++cached_counter(sigsys_slot_, "signals.sigsys");
  }
  Event event;
  event.type = EventType::kSignal;
  event.a = static_cast<std::uint64_t>(info.signo);
  event.b = static_cast<std::uint64_t>(info.code);
  event.c = info.syscall_nr;
  push_event(task, event);
}

void Tracer::on_seccomp_decision(const kern::Task& task, std::uint64_t nr,
                                 std::uint32_t action) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  ++cached_counter(seccomp_decision_slot_, "seccomp.decisions");
  Event event;
  event.type = EventType::kSeccompDecision;
  event.mech = kern::InterposeMechanism::kSeccompBpf;
  event.a = nr;
  event.b = action;
  push_event(task, event);
}

void Tracer::on_decode_invalidation(const kern::Task& task, std::uint64_t rip) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  metrics_.bump("dcache.invalidations");
  Event event;
  event.type = EventType::kDecodeInvalidation;
  event.a = rip;
  push_event(task, event);
}

void Tracer::on_block_invalidation(const kern::Task& task, std::uint64_t rip) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  metrics_.bump("bcache.invalidations");
  Event event;
  event.type = EventType::kBlockInvalidation;
  event.a = rip;
  push_event(task, event);
}

void Tracer::on_trace_invalidation(const kern::Task& task, std::uint64_t rip) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  metrics_.bump("tcache.invalidations");
  Event event;
  event.type = EventType::kTraceInvalidation;
  event.a = rip;
  push_event(task, event);
}

void Tracer::on_mechanism_install(const kern::Task& task,
                                  kern::InterposeMechanism mech) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  metrics_.bump(mech_counter("installs", mech));
  Event event;
  event.type = EventType::kMechanismInstall;
  event.mech = mech;
  push_event(task, event);
}

void Tracer::on_crosscheck(const kern::Task& task, std::uint64_t site,
                           std::uint8_t verdict, std::uint8_t outcome) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  metrics_.bump("crosscheck." +
                std::string(to_string(
                    static_cast<analysis::CrosscheckOutcome>(outcome))));
  Event event;
  event.type = EventType::kCrosscheck;
  event.a = site;
  event.b = verdict;
  event.c = outcome;
  push_event(task, event);
}

std::pair<std::uint64_t*, std::uint64_t*>& Tracer::policy_state_slots(
    std::uint64_t state) {
  auto it = policy_state_slots_.find(state);
  if (it == policy_state_slots_.end()) {
    const std::string label =
        state == kern::kPolicyEntryState
            ? std::string("entry")
            : std::string(kern::syscall_name(state));
    it = policy_state_slots_
             .emplace(state,
                      std::make_pair(
                          &metrics_.counter_slot("policy.state." + label +
                                                 ".checks"),
                          &metrics_.counter_slot("policy.state." + label +
                                                 ".violations")))
             .first;
  }
  return it->second;
}

void Tracer::on_policy_decision(const kern::Task& task, std::uint64_t nr,
                                std::uint64_t from_state,
                                kern::PolicyDecision decision) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  ++cached_counter(policy_transitions_slot_, "policy.transitions");
  auto& [checks, violations] = policy_state_slots(from_state);
  ++*checks;
  const bool violation = decision == kern::PolicyDecision::kViolationLogged ||
                         decision == kern::PolicyDecision::kViolationDenied ||
                         decision == kern::PolicyDecision::kViolationKilled;
  if (violation) {
    ++cached_counter(policy_violations_slot_, "policy.violations");
    ++*violations;
  }
  Event event;
  event.type = EventType::kPolicyDecision;
  event.a = nr;
  event.b = from_state;
  event.c = static_cast<std::uint64_t>(decision);
  push_event(task, event);
}

void Tracer::on_task_event(const kern::Task& task, TaskEvent te,
                           std::uint64_t detail) {
  if (!enabled()) return;
  auto lock = maybe_lock();
  Event event;
  switch (te) {
    case TaskEvent::kStart:
      metrics_.bump("tasks.started");
      event.type = EventType::kTaskStart;
      break;
    case TaskEvent::kSwitch:
      metrics_.bump("tasks.switches");
      event.type = EventType::kTaskSwitch;
      break;
    case TaskEvent::kClone:
      metrics_.bump("tasks.clones");
      event.type = EventType::kClone;
      break;
    case TaskEvent::kExecve:
      metrics_.bump("tasks.execves");
      event.type = EventType::kExecve;
      break;
    case TaskEvent::kExit:
      metrics_.bump("tasks.exits");
      event.type = EventType::kTaskExit;
      break;
  }
  event.a = detail;
  push_event(task, event);
}

}  // namespace lzp::trace
