// Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and a
// human-readable summary.
//
// The JSON follows the Trace Event Format's JSON-object flavor:
//   {"traceEvents": [...], "displayTimeUnit": "ns", ...}
// One track per task (pid 1, tid = sim tid). Completed interpositions become
// "X" (complete) events reconstructed from kSyscallExit — ts is the enter
// stamp (exit cycles minus latency), dur the cycle latency, cat the
// mechanism — so Perfetto renders each syscall as a span whose category
// filter isolates one mechanism. Everything else (rewrites, SIGSYS, selector
// flips, task lifecycle) becomes "i" (instant) events. Cycle stamps are
// emitted as microseconds 1:1; the unit label is cosmetic, relative spans
// are what the view is for.
#pragma once

#include <string>

#include "kernel/smp.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/tracer.hpp"

namespace lzp::trace {

// Chrome trace-event / Perfetto JSON for the ring's surviving events.
// `dropped` events (ring overflow) are recorded in the top-level metadata.
// The SmpStats overloads additionally emit the scheduler telemetry: "C"
// (counter-track) events — per-CPU step throughput / utilization / run-queue
// depth on each CPU's lane (pid = cpu + 1), cumulative steal / shootdown /
// mailbox counters on the scheduler lane (pid 0) — plus one "X" span per
// barrier round on pid 0, all stamped with the barrier's simulated-cycle
// clock so they align with the syscall spans.
[[nodiscard]] std::string export_chrome_json(const FlightRecorder& ring,
                                             std::uint64_t dropped);
[[nodiscard]] std::string export_chrome_json(const FlightRecorder& ring,
                                             std::uint64_t dropped,
                                             const kern::SmpStats& smp);
[[nodiscard]] std::string export_chrome_json(const Tracer& tracer);
[[nodiscard]] std::string export_chrome_json(const Tracer& tracer,
                                             const kern::SmpStats& smp);

// Human-readable rollup: counter table plus a per-(syscall, mechanism)
// latency table with count/mean/stddev/quantile/max-bucket columns.
[[nodiscard]] std::string render_summary(const MetricsRegistry& metrics,
                                         const FlightRecorder& ring);
[[nodiscard]] std::string render_summary(const Tracer& tracer);

}  // namespace lzp::trace
