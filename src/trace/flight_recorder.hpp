// Fixed-capacity ring buffer of trace events.
//
// The recorder is "flight data" style: always writing, bounded memory, the
// newest `capacity` events survive. When full it overwrites the oldest event
// and counts the casualty in dropped() — consumers can tell a complete trace
// (dropped() == 0) from a truncated one, and the exporter stamps the count
// into the JSON so a truncated Perfetto view is never mistaken for the whole
// run.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/events.hpp"

namespace lzp::trace {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  void push(const Event& event) noexcept {
    buf_[write_] = event;
    write_ = (write_ + 1) % buf_.size();
    if (count_ < buf_.size()) {
      ++count_;
    } else {
      ++dropped_;  // overwrote the oldest event
    }
  }

  // Oldest-first access: at(0) is the oldest surviving event.
  [[nodiscard]] const Event& at(std::size_t i) const noexcept {
    return buf_[(write_ + buf_.size() - count_ + i) % buf_.size()];
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void clear() noexcept {
    write_ = 0;
    count_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<Event> buf_;
  std::size_t write_ = 0;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lzp::trace
