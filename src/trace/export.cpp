#include "trace/export.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/crosscheck.hpp"
#include "base/strings.hpp"
#include "kernel/syscalls.hpp"
#include "metrics/json.hpp"
#include "metrics/report.hpp"

namespace lzp::trace {
namespace {

using metrics::JsonObject;

std::string event_name(const Event& event) {
  switch (event.type) {
    case EventType::kSyscallEnter:
    case EventType::kSyscallExit:
      return std::string(kern::syscall_name(event.a));
    case EventType::kSignal:
      return "signal " + std::string(kern::signal_name(static_cast<int>(event.a)));
    case EventType::kSeccompDecision:
      return "seccomp " + std::string(kern::syscall_name(event.a));
    case EventType::kPolicyDecision:
      return "policy " + std::string(kern::syscall_name(event.a));
    default:
      return std::string(to_string(event.type));
  }
}

std::string policy_state_name(std::uint64_t state) {
  return state == kern::kPolicyEntryState
             ? std::string("entry")
             : std::string(kern::syscall_name(state));
}

std::string instant_args(const Event& event) {
  JsonObject args;
  switch (event.type) {
    case EventType::kSelectorFlip:
      args.add("selector", event.a);
      break;
    case EventType::kSignal:
      args.add("signo", event.a).add("code", event.b).add("syscall_nr", event.c);
      break;
    case EventType::kSiteRewrite:
    case EventType::kDecodeInvalidation:
    case EventType::kBlockInvalidation:
    case EventType::kTraceInvalidation:
      args.add("addr", hex_u64(event.a));
      break;
    case EventType::kSeccompDecision:
      args.add("nr", event.a).add("action", event.b);
      break;
    case EventType::kPolicyDecision:
      args.add("nr", event.a)
          .add("from_state", policy_state_name(event.b))
          .add("decision",
               to_string(static_cast<kern::PolicyDecision>(event.c)));
      break;
    case EventType::kCrosscheck:
      args.add("site", hex_u64(event.a))
          .add("verdict", to_string(static_cast<analysis::Verdict>(event.b)))
          .add("outcome",
               to_string(static_cast<analysis::CrosscheckOutcome>(event.c)));
      break;
    case EventType::kTaskStart:
      args.add("entry", hex_u64(event.a));
      break;
    case EventType::kClone:
      args.add("child_tid", event.a);
      break;
    case EventType::kTaskExit:
      args.add("exit_code", event.a);
      break;
    default:
      break;
  }
  return args.render();
}

// One Perfetto counter-track sample: "ph":"C" with the value in args. Tracks
// are keyed by (pid, name); successive samples draw the counter's area chart.
std::string counter_event(std::string_view name, std::uint64_t pid,
                          std::uint64_t ts, double value) {
  JsonObject obj;
  obj.add("name", name).add("ph", "C").add("ts", ts).add("pid", pid);
  obj.add_raw("args", JsonObject().add("value", value).render());
  return obj.render();
}

// Appends the SMP scheduler telemetry events for one finished run_smp.
void append_smp_events(const kern::SmpStats& smp,
                       std::vector<std::string>& events) {
  constexpr std::uint64_t kSchedulerPid = 0;
  std::uint64_t prev_cycles = 0;
  for (const kern::SmpBarrierSample& sample : smp.timeline) {
    const std::uint64_t ts = sample.total_cycles;
    // Per-barrier-round span on the scheduler lane.
    {
      JsonObject obj;
      obj.add("name", "barrier round " + std::to_string(sample.round))
          .add("cat", "smp")
          .add("ph", "X")
          .add("ts", prev_cycles)
          .add("dur", ts - prev_cycles)
          .add("pid", kSchedulerPid)
          .add("tid", static_cast<std::uint64_t>(0));
      JsonObject args;
      args.add("round", sample.round)
          .add("insns", sample.total_insns)
          .add("steals", sample.steals)
          .add("shootdowns", sample.shootdowns)
          .add("mailbox_signals", sample.mailbox_signals);
      obj.add_raw("args", args.render());
      events.push_back(obj.render());
    }
    prev_cycles = ts;

    // Scheduler-global cumulative counters.
    events.push_back(counter_event("smp.steals", kSchedulerPid, ts,
                                   static_cast<double>(sample.steals)));
    events.push_back(counter_event("smp.shootdowns", kSchedulerPid, ts,
                                   static_cast<double>(sample.shootdowns)));
    events.push_back(counter_event("smp.mailbox_signals", kSchedulerPid, ts,
                                   static_cast<double>(sample.mailbox_signals)));

    // Per-CPU tracks on the CPU's own lane (pid = cpu + 1, matching the
    // syscall spans). Utilization is the CPU's share of the busiest lane's
    // steps this round — 100% means it kept pace with the hottest CPU.
    std::uint64_t busiest = 1;
    for (std::uint64_t steps : sample.cpu_steps) {
      busiest = std::max(busiest, steps);
    }
    for (std::size_t c = 0; c < sample.cpu_steps.size(); ++c) {
      const std::uint64_t pid = c + 1;
      events.push_back(counter_event("cpu.steps", pid, ts,
                                     static_cast<double>(sample.cpu_steps[c])));
      events.push_back(counter_event(
          "cpu.utilization", pid, ts,
          100.0 * static_cast<double>(sample.cpu_steps[c]) /
              static_cast<double>(busiest)));
      events.push_back(counter_event("cpu.run_queue", pid, ts,
                                     static_cast<double>(sample.run_queue[c])));
    }
  }
}

void append_ring_events(const FlightRecorder& ring,
                        std::vector<std::string>& events) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Event& event = ring.at(i);
    JsonObject obj;
    if (event.type == EventType::kSyscallExit) {
      // A completed interposition: one "X" span covering enter..exit.
      obj.add("name", event_name(event))
          .add("cat", kern::to_string(event.mech))
          .add("ph", "X")
          .add("ts", event.cycles - event.c)
          .add("dur", event.c)
          // One Perfetto "process" lane per simulated CPU (cpu 0 -> pid 1,
          // so single-CPU traces render exactly as before).
          .add("pid", static_cast<std::uint64_t>(event.cpu) + 1)
          .add("tid", static_cast<std::uint64_t>(event.tid));
      obj.add_raw("args", JsonObject()
                              .add("nr", event.a)
                              .add("result", static_cast<std::int64_t>(event.b))
                              .render());
    } else if (event.type == EventType::kSyscallEnter) {
      // The matching exit carries the span; skip to avoid double-drawing.
      continue;
    } else {
      obj.add("name", event_name(event))
          .add("cat", event.mech == kern::InterposeMechanism::kNone
                          ? std::string_view("kernel")
                          : kern::to_string(event.mech))
          .add("ph", "i")
          .add("ts", event.cycles)
          .add("pid", static_cast<std::uint64_t>(event.cpu) + 1)
          .add("tid", static_cast<std::uint64_t>(event.tid))
          .add("s", "t");  // thread-scoped instant
      obj.add_raw("args", instant_args(event));
    }
    events.push_back(obj.render());
  }
}

std::string render_trace_root(const std::vector<std::string>& events,
                              std::uint64_t dropped) {
  JsonObject root;
  root.add_raw("traceEvents", metrics::json_array(events));
  root.add("displayTimeUnit", "ns");
  root.add_raw("otherData", JsonObject()
                                .add("clock", "simulated-cycles")
                                .add("droppedEvents", dropped)
                                .render());
  return root.render();
}

}  // namespace

std::string export_chrome_json(const FlightRecorder& ring,
                               std::uint64_t dropped) {
  std::vector<std::string> events;
  events.reserve(ring.size());
  append_ring_events(ring, events);
  return render_trace_root(events, dropped);
}

std::string export_chrome_json(const FlightRecorder& ring,
                               std::uint64_t dropped,
                               const kern::SmpStats& smp) {
  std::vector<std::string> events;
  events.reserve(ring.size() + 16 * smp.timeline.size());
  append_ring_events(ring, events);
  append_smp_events(smp, events);
  return render_trace_root(events, dropped);
}

std::string export_chrome_json(const Tracer& tracer) {
  return export_chrome_json(tracer.ring(), tracer.ring().dropped());
}

std::string export_chrome_json(const Tracer& tracer,
                               const kern::SmpStats& smp) {
  return export_chrome_json(tracer.ring(), tracer.ring().dropped(), smp);
}

std::string render_summary(const MetricsRegistry& registry,
                           const FlightRecorder& ring) {
  std::string out;

  out += "== counters ==\n";
  std::vector<std::pair<std::string, std::uint64_t>> counters(
      registry.counters().begin(), registry.counters().end());
  counters.emplace_back("ring.events", ring.size());
  counters.emplace_back("ring.dropped", ring.dropped());
  out += metrics::counters_table(counters);

  // Policy activity: rendered only when a PolicyEnforcer reported into this
  // registry (the "policy.*" counters exist). Per-state hit-rate is that
  // state's share of all transition checks — together the rows account for
  // every syscall the enforcer saw.
  const auto& counters_map = registry.counters();
  const auto transitions_it = counters_map.find("policy.transitions");
  if (transitions_it != counters_map.end() && transitions_it->second != 0) {
    const double total = static_cast<double>(transitions_it->second);
    const auto violations_it = counters_map.find("policy.violations");
    const std::uint64_t violations =
        violations_it == counters_map.end() ? 0 : violations_it->second;
    out += "\n== policy (syscall-flow integrity) ==\n";
    out += "transitions checked: " + std::to_string(transitions_it->second) +
           ", violations: " + std::to_string(violations) + "\n";
    metrics::Table table({"state", "checks", "violations", "hit-rate"});
    const std::string prefix = "policy.state.";
    const std::string checks_suffix = ".checks";
    for (const auto& [name, value] : counters_map) {
      if (name.rfind(prefix, 0) != 0) continue;
      if (name.size() < checks_suffix.size() ||
          name.compare(name.size() - checks_suffix.size(),
                       checks_suffix.size(), checks_suffix) != 0) {
        continue;
      }
      const std::string state =
          name.substr(prefix.size(),
                      name.size() - prefix.size() - checks_suffix.size());
      const auto viol_it =
          counters_map.find(prefix + state + ".violations");
      const std::uint64_t state_violations =
          viol_it == counters_map.end() ? 0 : viol_it->second;
      table.add_row({state, std::to_string(value),
                     std::to_string(state_violations),
                     format_double(100.0 * static_cast<double>(value) / total,
                                   1) +
                         "%"});
    }
    out += table.render();
  }

  out += "\n== interposition latency (cycles) ==\n";
  metrics::Table table({"syscall", "mechanism", "count", "mean", "stddev",
                        "p50", "p95", "p99", "p-bucket"});
  for (const auto& [key, hist] : registry.histograms()) {
    // The widest populated log2 bucket: "[512, 1024)" style.
    std::size_t top = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (hist.buckets[i] != 0) top = i;
    }
    const std::uint64_t lo = top == 0 ? 0 : (1ULL << top);
    table.add_row({std::string(kern::syscall_name(key.nr)),
                   std::string(kern::to_string(key.mech)),
                   std::to_string(hist.total()),
                   format_double(hist.stats.mean(), 1),
                   format_double(hist.stats.stddev(), 1),
                   format_double(hist.quantile(0.50), 0),
                   format_double(hist.quantile(0.95), 0),
                   format_double(hist.quantile(0.99), 0),
                   "[" + std::to_string(lo) + ", " +
                       std::to_string(1ULL << (top + 1)) + ")"});
  }
  out += table.render();
  return out;
}

std::string render_summary(const Tracer& tracer) {
  return render_summary(tracer.metrics(), tracer.ring());
}

}  // namespace lzp::trace
