// The full-fat TraceSink: flight recorder + metrics registry.
//
// A Tracer attaches to a Machine as its trace sink and turns every probe into
// (a) a typed event in the ring buffer and (b) counter/histogram updates in
// the registry. It consumes *only* the kernel probe layer — no Machine
// observers — so it composes freely with replay and user observers, and a
// single `enabled` flag gates all recording at run time (the attach stays,
// the probes become single-branch no-ops).
//
// Enter/exit pairing: each mechanism brackets its handler with
// on_interpose_enter/on_interpose_exit. Pairs are matched through a per-tid
// stack of open frames (nested interposition — a handler issuing an
// interposed syscall — pops in LIFO order), and the latency is the task's own
// cycle delta between the two probes: syscalls complete synchronously within
// one machine step, so no other task's cycles can leak into the interval.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "kernel/machine.hpp"
#include "kernel/trace_sink.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"

namespace lzp::trace {

class Tracer final : public kern::TraceSink {
 public:
  explicit Tracer(std::size_t ring_capacity = FlightRecorder::kDefaultCapacity)
      : ring_(ring_capacity) {}

  // Installs this tracer as the machine's trace sink. Recording starts
  // immediately (construct-then-attach is enabled by default). The runtime
  // gate is TraceSink::set_enabled: a disabled tracer stays attached but the
  // Machine stops routing probes to it.
  void attach(kern::Machine& machine);
  void detach(kern::Machine& machine);

  [[nodiscard]] const FlightRecorder& ring() const noexcept { return ring_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  // Mutable view, for folding in end-of-run aggregates that have no per-event
  // probe (record_smp_stats, record_trace_cache_stats).
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  void clear();

  // SMP mode: probes fire from several host threads at once, so a concurrent
  // tracer serializes each probe through an internal mutex and timestamps
  // events with the task's own cycle counter (the machine-global counter is
  // stale between barriers). Off by default — the single-threaded hot path
  // (gated by bench/trace_overhead) stays lock-free. Flip only while no run
  // is in progress.
  void set_concurrent(bool on) noexcept { concurrent_ = on; }
  [[nodiscard]] bool concurrent() const noexcept { return concurrent_; }

  // TraceSink probes.
  void on_interpose_enter(const kern::Task& task, std::uint64_t nr,
                          kern::InterposeMechanism mech) override;
  void on_interpose_exit(const kern::Task& task, std::uint64_t nr,
                         kern::InterposeMechanism mech,
                         std::uint64_t result) override;
  void on_selector_flip(const kern::Task& task, std::uint8_t value) override;
  void on_site_rewrite(const kern::Task& task, std::uint64_t site_addr) override;
  void on_signal_delivery(const kern::Task& task,
                          const kern::SigInfo& info) override;
  void on_seccomp_decision(const kern::Task& task, std::uint64_t nr,
                           std::uint32_t action) override;
  void on_decode_invalidation(const kern::Task& task, std::uint64_t rip) override;
  void on_block_invalidation(const kern::Task& task, std::uint64_t rip) override;
  void on_trace_invalidation(const kern::Task& task, std::uint64_t rip) override;
  void on_mechanism_install(const kern::Task& task,
                            kern::InterposeMechanism mech) override;
  void on_crosscheck(const kern::Task& task, std::uint64_t site,
                     std::uint8_t verdict, std::uint8_t outcome) override;
  void on_policy_decision(const kern::Task& task, std::uint64_t nr,
                          std::uint64_t from_state,
                          kern::PolicyDecision decision) override;
  void on_task_event(const kern::Task& task, TaskEvent event,
                     std::uint64_t detail) override;

 private:
  struct OpenFrame {
    std::uint64_t nr;
    kern::InterposeMechanism mech;
    std::uint64_t enter_task_cycles;   // task.cycles at enter (latency base)
    std::uint64_t enter_total_cycles;  // global stamp at enter (export ts)
  };

  void push_event(const kern::Task& task, Event event);
  [[nodiscard]] std::uint64_t now() const noexcept;
  // Held for the whole probe when concurrent; a released (empty) lock
  // otherwise, so the single-threaded path pays one branch and no atomic.
  [[nodiscard]] std::unique_lock<std::mutex> maybe_lock() {
    return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                       : std::unique_lock<std::mutex>();
  }
  [[nodiscard]] std::vector<OpenFrame>& open_frames(kern::Tid tid);
  [[nodiscard]] std::uint64_t& cached_counter(std::uint64_t*& slot,
                                              const char* name);
  void reset_slot_caches() noexcept;
  [[nodiscard]] std::pair<std::uint64_t*, std::uint64_t*>& policy_state_slots(
      std::uint64_t state);

  kern::Machine* machine_ = nullptr;
  bool concurrent_ = false;
  std::mutex mu_;
  FlightRecorder ring_;
  MetricsRegistry metrics_;
  std::map<kern::Tid, std::vector<OpenFrame>> open_;

  // Hot-path slot caches into the registry's node-stable maps (reset by
  // clear()). The per-event cost is what bench/trace_overhead.cpp gates, so
  // the common probes must not do a string-keyed map lookup per event.
  std::array<std::uint64_t*, kern::kNumMechanisms> syscall_count_slots_{};
  std::uint64_t* policy_transitions_slot_ = nullptr;
  std::uint64_t* policy_violations_slot_ = nullptr;
  // Per-automaton-state check/violation slots ("policy.state.<name>.*"):
  // policies have a handful of states, so one map lookup keyed by the raw
  // state id (no string formatting) amortizes to a cheap hit.
  std::map<std::uint64_t, std::pair<std::uint64_t*, std::uint64_t*>>
      policy_state_slots_;
  std::uint64_t* selector_flip_slot_ = nullptr;
  std::uint64_t* signals_delivered_slot_ = nullptr;
  std::uint64_t* sigsys_slot_ = nullptr;
  std::uint64_t* seccomp_decision_slot_ = nullptr;
  LatencyHistogram* last_hist_ = nullptr;
  std::uint64_t last_hist_nr_ = ~0ULL;
  kern::InterposeMechanism last_hist_mech_ = kern::InterposeMechanism::kNone;
  std::vector<OpenFrame>* last_open_ = nullptr;
  kern::Tid last_open_tid_ = 0;
};

}  // namespace lzp::trace
