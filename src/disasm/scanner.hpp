// Static binary scanning for syscall instructions — the substrate that
// rewriting-based interposers (zpoline, SaBRe, syscall_intercept) depend on,
// together with its two classic failure modes (paper §II-B):
//
//   * RAW BYTE SCAN finds every 0F 05 / 0F 34 byte pair, including pairs
//     that are actually *inside* other instructions' immediates — rewriting
//     those corrupts unrelated code (false positives).
//   * LINEAR SWEEP decodes from the start of the region and resynchronizes
//     byte-by-byte after undecodable bytes; data interleaved with code can
//     desynchronize it so real syscall instructions are skipped (false
//     negatives) or phantom ones are reported.
//
// Neither strategy sees code mapped or generated after the scan. The
// evaluation compares both against assembler ground truth, and against the
// lazy kernel-assisted discovery that lazypoline uses instead.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/assemble.hpp"

namespace lzp::disasm {

enum class Strategy : std::uint8_t {
  kRawBytes,     // grep for the 2-byte syscall encodings
  kLinearSweep,  // decode linearly, resync +1 byte on decode failure
  kUnion,        // merge of both: everything either strategy reports
};

struct ScanResult {
  // Absolute addresses, always sorted ascending with no duplicates — the
  // invariant holds for every strategy, including kUnion, so consumers can
  // merge or diff results without re-normalizing.
  std::vector<std::uint64_t> syscall_sites;
  std::size_t decode_errors = 0;             // resyncs (linear sweep only)
  std::size_t insns_decoded = 0;
};

[[nodiscard]] ScanResult scan(std::span<const std::uint8_t> bytes,
                              std::uint64_t base, Strategy strategy);

// Classification of a scan against assembler ground truth.
struct ScanAccuracy {
  std::vector<std::uint64_t> true_positives;
  std::vector<std::uint64_t> false_positives;  // would corrupt code if rewritten
  std::vector<std::uint64_t> missed;           // syscalls that escape interposition
};

[[nodiscard]] ScanAccuracy evaluate(const ScanResult& result,
                                    const isa::Program& program);

// objdump-style listing via linear sweep: one line per decoded instruction
// ("<addr>: <bytes>  <mnemonic>"), with undecodable bytes shown as ".byte".
[[nodiscard]] std::string listing(std::span<const std::uint8_t> bytes,
                                  std::uint64_t base);

}  // namespace lzp::disasm
