#include "disasm/scanner.hpp"

#include <algorithm>
#include <set>

#include "base/strings.hpp"
#include "isa/decode.hpp"

namespace lzp::disasm {
namespace {

ScanResult raw_byte_scan(std::span<const std::uint8_t> bytes, std::uint64_t base) {
  ScanResult result;
  if (bytes.size() < 2) return result;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    if (isa::is_syscall_bytes(bytes.subspan(i))) {
      result.syscall_sites.push_back(base + i);
    }
  }
  return result;
}

ScanResult linear_sweep(std::span<const std::uint8_t> bytes, std::uint64_t base) {
  ScanResult result;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    auto decoded = isa::decode(bytes.subspan(offset));
    if (!decoded) {
      // Unknown byte: resynchronize one byte later, like linear-sweep
      // disassemblers skipping over data.
      ++result.decode_errors;
      ++offset;
      continue;
    }
    ++result.insns_decoded;
    const isa::Instruction& insn = decoded.value();
    if (insn.op == isa::Op::kSyscall || insn.op == isa::Op::kSysenter) {
      result.syscall_sites.push_back(base + offset);
    }
    offset += insn.length;
  }
  return result;
}

// Establishes the ScanResult invariant: sites sorted ascending, unique.
void normalize(ScanResult& result) {
  std::sort(result.syscall_sites.begin(), result.syscall_sites.end());
  result.syscall_sites.erase(
      std::unique(result.syscall_sites.begin(), result.syscall_sites.end()),
      result.syscall_sites.end());
}

}  // namespace

ScanResult scan(std::span<const std::uint8_t> bytes, std::uint64_t base,
                Strategy strategy) {
  ScanResult result;
  switch (strategy) {
    case Strategy::kRawBytes:
      result = raw_byte_scan(bytes, base);
      break;
    case Strategy::kLinearSweep:
      result = linear_sweep(bytes, base);
      break;
    case Strategy::kUnion: {
      result = raw_byte_scan(bytes, base);
      ScanResult sweep = linear_sweep(bytes, base);
      result.syscall_sites.insert(result.syscall_sites.end(),
                                  sweep.syscall_sites.begin(),
                                  sweep.syscall_sites.end());
      result.decode_errors = sweep.decode_errors;
      result.insns_decoded = sweep.insns_decoded;
      break;
    }
  }
  normalize(result);
  return result;
}

std::string listing(std::span<const std::uint8_t> bytes, std::uint64_t base) {
  std::string out;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    auto decoded = isa::decode(bytes.subspan(offset));
    const std::size_t length = decoded ? decoded.value().length : 1;
    out += hex_u64(base + offset);
    out += ":  ";
    std::string encoded;
    for (std::size_t i = 0; i < length && offset + i < bytes.size(); ++i) {
      if (i != 0) encoded += ' ';
      encoded += hex_byte(bytes[offset + i]);
    }
    out += pad_right(encoded, 30);
    out += decoded ? decoded.value().to_string()
                   : std::string(".byte ") + hex_byte(bytes[offset]);
    out += '\n';
    offset += length;
  }
  return out;
}

ScanAccuracy evaluate(const ScanResult& result, const isa::Program& program) {
  ScanAccuracy accuracy;
  const auto truth_vec = program.true_syscall_addresses();
  const std::set<std::uint64_t> truth(truth_vec.begin(), truth_vec.end());
  std::set<std::uint64_t> found(result.syscall_sites.begin(),
                                result.syscall_sites.end());
  for (std::uint64_t site : found) {
    if (truth.count(site) != 0) {
      accuracy.true_positives.push_back(site);
    } else {
      accuracy.false_positives.push_back(site);
    }
  }
  for (std::uint64_t site : truth) {
    if (found.count(site) == 0) accuracy.missed.push_back(site);
  }
  return accuracy;
}

}  // namespace lzp::disasm
