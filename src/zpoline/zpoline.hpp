// zpoline (Yasukata et al., ATC'23): syscall interposition by static binary
// rewriting, reimplemented as the paper's fast-path baseline (§II-B).
//
// At load time it (1) maps a trampoline at virtual address 0 — a one-byte-nop
// sled covering every syscall number, falling through into the interposer's
// native entry code — and (2) statically scans the text segment for syscall
// instructions, rewriting each 2-byte SYSCALL into the 2-byte CALL RAX.
// Because rax holds the syscall number (< 512) at every real call site, the
// call lands inside the sled and slides into the handler; the return address
// pushed by CALL brings execution back to just after the rewritten site.
//
// By construction it *cannot fail to rewrite* a site it knows about — but it
// only knows what static scanning finds: code loaded or JIT-generated later,
// or code hidden from the disassembler, escapes interposition entirely
// (the exhaustiveness gap lazypoline closes).
#pragma once

#include <memory>

#include "disasm/scanner.hpp"
#include "interpose/mechanism.hpp"

namespace lzp::zpoline {

struct ZpolineOptions {
  disasm::Strategy scan_strategy = disasm::Strategy::kLinearSweep;
  // Verified-eager mode: replace the scanner with the CFG rewrite-safety
  // analyzer (src/analysis) and patch only sites it proves SAFE. Unsafe and
  // unknown candidates are left untouched — under pure zpoline they escape
  // interposition (honestly reported in stats); under lazypoline the SUD
  // slow path still catches them.
  bool verified_only = false;
};

struct ZpolineStats {
  std::size_t sites_rewritten = 0;
  std::size_t scan_decode_errors = 0;
  // Verified-eager mode: candidates the analyzer refused to patch.
  std::size_t sites_skipped_unsafe = 0;
  std::size_t sites_skipped_unknown = 0;
};

class ZpolineMechanism final : public interpose::Mechanism {
 public:
  explicit ZpolineMechanism(ZpolineOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "zpoline"; }

  // Requires machine.mmap_min_addr == 0 (the trampoline must own VA 0) and
  // the task's program to be registered with the machine (the "binary" the
  // static scan reads).
  Status install(kern::Machine& machine, kern::Tid tid,
                 std::shared_ptr<interpose::SyscallHandler> handler) override;

  [[nodiscard]] interpose::Characteristics characteristics() const override {
    return {interpose::Level::kFull, /*exhaustive=*/false,
            interpose::Level::kHigh};
  }

  [[nodiscard]] const ZpolineStats& stats() const noexcept { return stats_; }

  // Size of the nop sled: one slot per possible syscall number.
  static constexpr std::uint64_t kSledSize = kern::kMaxSyscallNumber + 1;

  // Rewrites one verified syscall site to CALL RAX, flipping the page to
  // writable and back. Shared with lazypoline, whose slow path performs the
  // same rewrite lazily on kernel-verified sites.
  static Status rewrite_site(kern::Machine& machine, kern::Task& task,
                             std::uint64_t site_addr);

  // Maps and fills the trampoline page at VA 0; returns OK or why not.
  static Status install_trampoline(kern::Machine& machine, kern::Task& task,
                                   std::uint64_t entry_host_addr);

 private:
  ZpolineOptions options_;
  ZpolineStats stats_;
};

}  // namespace lzp::zpoline
