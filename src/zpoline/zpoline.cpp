#include "zpoline/zpoline.hpp"

#include "analysis/analyzer.hpp"
#include "isa/decode.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::zpoline {
namespace {

// Child-context fixup after a clone/fork performed from inside the
// interposer entry: the child must resume in *application* code right after
// the rewritten call site, on the right stack, with rax = 0. (In the real
// implementation the child simply executes the trampoline's return path;
// our host-bound entry performs the equivalent explicitly.)
void fixup_clone_child(kern::Machine& machine, kern::Task& parent,
                       cpu::CpuContext& parent_ctx, std::uint64_t child_tid,
                       std::uint64_t clone_stack) {
  kern::Task* child = machine.find_task_any(static_cast<kern::Tid>(child_tid));
  if (child == nullptr) return;
  auto ret_addr = parent.mem->read_u64(parent_ctx.rsp());
  if (!ret_addr) return;
  child->ctx.rip = ret_addr.value();
  child->ctx.set_rsp(clone_stack != 0 ? clone_stack : parent_ctx.rsp() + 8);
  child->ctx.set_reg(isa::Gpr::rax, 0);
}

}  // namespace

Status ZpolineMechanism::install_trampoline(kern::Machine& machine,
                                            kern::Task& task,
                                            std::uint64_t entry_host_addr) {
  if (machine.mmap_min_addr != 0) {
    return make_error(
        StatusCode::kPermissionDenied,
        "zpoline trampoline needs VA 0: set vm.mmap_min_addr = 0");
  }
  const std::uint64_t length = mem::page_ceil(kSledSize + 8);
  auto page = task.mem->map(0, length, mem::kProtRead | mem::kProtWrite,
                            /*fixed=*/true);
  if (!page) return page.status();

  // One-byte nops for every syscall number, then the jump into native code.
  std::vector<std::uint8_t> sled(kSledSize, isa::kByteNop);
  isa::Assembler assembler;
  assembler.hostcall(kern::Machine::host_index(entry_host_addr));
  auto tail = assembler.finish();
  if (!tail) return tail.status();
  sled.insert(sled.end(), tail.value().begin(), tail.value().end());
  LZP_RETURN_IF_ERROR(task.mem->write_force(0, sled));

  // W^X: the trampoline becomes execute-only-plus-read once written.
  return task.mem->protect(0, length, mem::kProtRead | mem::kProtExec);
}

Status ZpolineMechanism::rewrite_site(kern::Machine& machine, kern::Task& task,
                                      std::uint64_t site_addr) {
  // The rewrite itself is performed by in-process runtime code: flip the
  // page writable, patch 2 bytes, flip it back. Charge what those mprotect
  // syscalls and the write cost in reality.
  const std::uint64_t page = mem::page_floor(site_addr);
  const std::uint64_t span =
      mem::page_floor(site_addr + 1) == page ? mem::kPageSize : 2 * mem::kPageSize;
  auto old_prot = task.mem->prot_at(site_addr);
  if (!old_prot.has_value()) {
    return make_error(StatusCode::kNotFound, "rewrite: unmapped site");
  }
  // Rewrites also run at install/eager-patch time, outside any host-frame
  // dispatch scope, so pin the attribution class here.
  kern::ScopedCycleClass scope(task, kern::CycleClass::kInterposer);
  machine.charge(task, 2 * machine.costs().raw_nosys_roundtrip() +
                           2 * machine.costs().mmap_page);
  LZP_RETURN_IF_ERROR(
      task.mem->protect(page, span, mem::kProtRead | mem::kProtWrite));
  const std::uint8_t call_rax[2] = {isa::kByteFF, isa::kByteCallRax2};
  LZP_RETURN_IF_ERROR(task.mem->write_force(site_addr, call_rax));
  if (auto* sink = machine.trace_sink()) sink->on_site_rewrite(task, site_addr);
  return task.mem->protect(page, span, *old_prot);
}

Status ZpolineMechanism::install(kern::Machine& machine, kern::Tid tid,
                                 std::shared_ptr<interpose::SyscallHandler> handler) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "zpoline: no such task");
  }
  const isa::Program* program =
      machine.find_program(task->process->program_name);
  if (program == nullptr) {
    return make_error(StatusCode::kNotFound,
                      "zpoline: program image not registered for scanning");
  }

  // Native interposer entry: reached from the sled tail with the syscall
  // number in rax and the return address (site + 2) on the stack.
  const std::uint64_t entry = machine.bind_host(
      "zpoline.entry", [handler](kern::HostFrame& frame) {
        frame.charge(frame.machine.costs().trampoline_glue);
        interpose::SyscallRequest req;
        req.nr = frame.ctx.syscall_number();
        for (std::size_t i = 0; i < 6; ++i) req.args[i] = frame.ctx.syscall_arg(i);
        auto site = frame.task.mem->read_u64(frame.ctx.rsp());
        if (site) req.site = site.value() - 2;

        interpose::InterposeContext ictx(
            frame.machine, frame.task, req,
            [&frame](std::uint64_t nr, const std::array<std::uint64_t, 6>& args) {
              const std::uint64_t result = frame.syscall(nr, args);
              if ((nr == kern::kSysClone || nr == kern::kSysFork ||
                   nr == kern::kSysVfork) &&
                  !kern::is_error_result(result)) {
                fixup_clone_child(frame.machine, frame.task, frame.ctx, result,
                                  nr == kern::kSysClone ? args[1] : 0);
              }
              return result;
            });
        if (auto* sink = frame.machine.trace_sink()) {
          sink->on_interpose_enter(frame.task, req.nr,
                                   kern::InterposeMechanism::kZpoline);
        }
        const std::uint64_t result = handler->handle(ictx);
        if (auto* sink = frame.machine.trace_sink()) {
          sink->on_interpose_exit(frame.task, req.nr,
                                  kern::InterposeMechanism::kZpoline, result);
        }
        // zpoline preserves general-purpose registers only: extended state
        // is deliberately NOT saved/restored (paper §IV-B) — any xstate use
        // by the handler leaks into the application.
        frame.ctx.set_syscall_result(result);
        frame.ret();
      });

  LZP_RETURN_IF_ERROR(install_trampoline(machine, *task, entry));

  if (options_.verified_only) {
    // Verified-eager mode: CFG + superset analysis over the load-time text
    // image; only sites with a SAFE rewrite-safety verdict are patched.
    const analysis::Analysis result =
        analysis::analyze(program->image, program->base, program->entry);
    for (const analysis::SiteVerdict& site : result.sites) {
      switch (site.verdict) {
        case analysis::Verdict::kSafe:
          LZP_RETURN_IF_ERROR(rewrite_site(machine, *task, site.addr));
          ++stats_.sites_rewritten;
          break;
        case analysis::Verdict::kUnknown:
          ++stats_.sites_skipped_unknown;
          break;
        default:
          ++stats_.sites_skipped_unsafe;
          break;
      }
    }
  } else {
    // Static scan of the (load-time) text image, then rewrite what was found.
    const disasm::ScanResult scan_result =
        disasm::scan(program->image, program->base, options_.scan_strategy);
    stats_.scan_decode_errors = scan_result.decode_errors;
    for (std::uint64_t site : scan_result.syscall_sites) {
      LZP_RETURN_IF_ERROR(rewrite_site(machine, *task, site));
      ++stats_.sites_rewritten;
    }
  }
  if (auto* sink = machine.trace_sink()) {
    sink->on_mechanism_install(*task, kern::InterposeMechanism::kZpoline);
  }
  return Status::ok();
}

}  // namespace lzp::zpoline
