#include "apps/coreutils.hpp"

#include <algorithm>

#include "kernel/syscalls.hpp"

namespace lzp::apps {
namespace {

using isa::Gpr;

void emit_ls(isa::Assembler& a) {
  const std::uint64_t dir = embed_string(a, "data");
  a.mov(Gpr::rsi, dir);
  a.mov(Gpr::rdi, 0);  // AT_FDCWD model
  a.mov(Gpr::rdx, 0);
  emit_syscall(a, kern::kSysOpenat);
  a.mov(Gpr::rbx, Gpr::rax);                 // dir fd
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, kScratchBuf);
  a.mov(Gpr::rdx, 4096);
  emit_syscall(a, kern::kSysGetdents64);
  a.mov(Gpr::rdx, Gpr::rax);                 // byte count
  a.mov(Gpr::rdi, 1);
  a.mov(Gpr::rsi, kScratchBuf);
  emit_syscall(a, kern::kSysWrite);
  a.mov(Gpr::rdi, Gpr::rbx);
  emit_syscall(a, kern::kSysClose);
}

void emit_pwd(isa::Assembler& a) {
  emit_syscall2(a, kern::kSysGetcwd, kScratchBuf, 256);
  a.mov(Gpr::rdx, Gpr::rax);
  a.mov(Gpr::rdi, 1);
  a.mov(Gpr::rsi, kScratchBuf);
  emit_syscall(a, kern::kSysWrite);
}

void emit_chmod(isa::Assembler& a) {
  const std::uint64_t path = embed_string(a, "data/a.txt");
  a.mov(Gpr::rdi, path);
  a.mov(Gpr::rsi, 0644);
  emit_syscall(a, kern::kSysChmod);
}

void emit_mkdir(isa::Assembler& a) {
  const std::uint64_t path = embed_string(a, "newdir");
  a.mov(Gpr::rdi, path);
  a.mov(Gpr::rsi, 0755);
  emit_syscall(a, kern::kSysMkdir);
}

void emit_mv(isa::Assembler& a) {
  const std::uint64_t from = embed_string(a, "data/a.txt");
  const std::uint64_t to = embed_string(a, "data/moved.txt");
  a.mov(Gpr::rdi, from);
  a.mov(Gpr::rsi, to);
  emit_syscall(a, kern::kSysRename);
}

void emit_cp(isa::Assembler& a) {
  const std::uint64_t src = embed_string(a, "data/a.txt");
  const std::uint64_t dst = embed_string(a, "data/copy.txt");
  a.mov(Gpr::rdi, src);
  a.mov(Gpr::rsi, 0);
  emit_syscall(a, kern::kSysOpen);
  a.mov(Gpr::rbx, Gpr::rax);                 // src fd
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, kStatBuf);
  emit_syscall(a, kern::kSysFstat);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, kScratchBuf);
  a.mov(Gpr::rdx, 4096);
  emit_syscall(a, kern::kSysRead);
  a.mov(Gpr::r14, Gpr::rax);                 // bytes read
  a.mov(Gpr::rdi, dst);
  a.mov(Gpr::rsi, 0x40);                     // O_CREAT
  emit_syscall(a, kern::kSysOpen);
  a.mov(Gpr::r15, Gpr::rax);                 // dst fd
  a.mov(Gpr::rdi, Gpr::r15);
  a.mov(Gpr::rsi, kScratchBuf);
  a.mov(Gpr::rdx, Gpr::r14);
  emit_syscall(a, kern::kSysWrite);
  a.mov(Gpr::rdi, Gpr::rbx);
  emit_syscall(a, kern::kSysClose);
  a.mov(Gpr::rdi, Gpr::r15);
  emit_syscall(a, kern::kSysClose);
}

void emit_rm(isa::Assembler& a) {
  const std::uint64_t path = embed_string(a, "data/b.txt");
  a.mov(Gpr::rdi, path);
  emit_syscall(a, kern::kSysUnlink);
}

void emit_touch(isa::Assembler& a) {
  const std::uint64_t path = embed_string(a, "newfile");
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rsi, path);
  a.mov(Gpr::rdx, 0x40);                     // O_CREAT
  emit_syscall(a, kern::kSysOpenat);
  a.mov(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, 0);
  emit_syscall(a, kern::kSysUtimensat);
  a.mov(Gpr::rdi, Gpr::rbx);
  emit_syscall(a, kern::kSysClose);
}

void emit_cat(isa::Assembler& a) {
  const std::uint64_t path = embed_string(a, "data/a.txt");
  a.mov(Gpr::rdi, path);
  a.mov(Gpr::rsi, 0);
  emit_syscall(a, kern::kSysOpen);
  a.mov(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, kScratchBuf);
  a.mov(Gpr::rdx, 4096);
  emit_syscall(a, kern::kSysRead);
  a.mov(Gpr::rdx, Gpr::rax);
  a.mov(Gpr::rdi, 1);
  a.mov(Gpr::rsi, kScratchBuf);
  emit_syscall(a, kern::kSysWrite);
  a.mov(Gpr::rdi, Gpr::rbx);
  emit_syscall(a, kern::kSysClose);
}

void emit_clear(isa::Assembler& a) {
  emit_print(a, "\x1b[H\x1b[2J\x1b[3J");
}

}  // namespace

bool ubuntu_build_uses_pthread(const std::string& name) {
  // Which Ubuntu 20.04 builds run the Listing-1 pthread init: 4 of 10
  // utilities, reproducing the paper's "40% of the evaluated coreutils are
  // affected by the same pthread initialization issue".
  return name == "ls" || name == "mkdir" || name == "mv" || name == "cp";
}

Result<isa::Program> make_coreutil(const std::string& name, LibcProfile profile) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  emit_libc_init(a, profile, ubuntu_build_uses_pthread(name));

  if (name == "ls") emit_ls(a);
  else if (name == "pwd") emit_pwd(a);
  else if (name == "chmod") emit_chmod(a);
  else if (name == "mkdir") emit_mkdir(a);
  else if (name == "mv") emit_mv(a);
  else if (name == "cp") emit_cp(a);
  else if (name == "rm") emit_rm(a);
  else if (name == "touch") emit_touch(a);
  else if (name == "cat") emit_cat(a);
  else if (name == "clear") emit_clear(a);
  else {
    return make_error(StatusCode::kNotFound, "unknown coreutil: " + name);
  }

  emit_exit(a, 0);
  std::string image_name = name;
  image_name += profile == LibcProfile::kUbuntu2004 ? "@ubuntu20.04"
                                                     : "@clearlinux";
  return isa::make_program(image_name, a, entry);
}

void populate_coreutil_fixtures(kern::Vfs& vfs) {
  (void)vfs.mkdir("data");
  (void)vfs.put_file("data/a.txt", {'h', 'e', 'l', 'l', 'o', '\n'});
  (void)vfs.put_file("data/b.txt", {'w', 'o', 'r', 'l', 'd', '\n'});
  (void)vfs.put_file_of_size("data/big.bin", 8192);
}

}  // namespace lzp::apps
