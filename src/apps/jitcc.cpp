#include "apps/jitcc.hpp"

#include "apps/minicc.hpp"
#include "apps/minilibc.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::apps {

using isa::Gpr;

std::string exhaustiveness_test_source() {
  // "We introduce a singular, non-libc getpid syscall into a C application"
  // (§V-A). getpid = 39 on x86-64.
  return R"(
    int compute() {
      int acc = 0;
      int i = 0;
      while (i < 5) {
        acc = acc + i * 2;
        i = i + 1;
      }
      return acc;
    }

    int main() {
      int pid = syscall1(39, 0);
      int x = compute();
      if (pid > 0) {
        x = x + 1;
      }
      return x;
    }
  )";
}

inline constexpr std::uint64_t kJitBufferSize = 65536;

Result<JitRunnerInfo> make_jit_runner(kern::Machine& machine,
                                      const std::string& source_path) {
  // The "compiler" host binding stands in for tcc's own native code: it
  // lexes/parses/lowers the source the runner loaded into its buffer and
  // emits machine code into the RW pages the runner mmap'ed (r13). All
  // kernel interactions — reading the source, mmap, the W^X mprotect — are
  // performed by the runner as ordinary, interposable simulated syscalls.
  const std::uint64_t compile_fn = machine.bind_host(
      "jitcc.compile", [](kern::HostFrame& frame) {
        const std::uint64_t length = frame.ctx.reg(Gpr::rbx);
        const std::uint64_t code_buf = frame.ctx.reg(Gpr::r13);
        std::vector<std::uint8_t> source_bytes(length);
        if (length == 0 ||
            frame.task.mem->read(kScratchBuf, source_bytes).has_value()) {
          frame.machine.kill_process(*frame.task.process, 1,
                                     "jitcc: cannot read source buffer");
          return;
        }
        std::string source(source_bytes.begin(), source_bytes.end());

        auto compiled = minicc::compile(source);
        if (!compiled) {
          frame.machine.kill_process(
              *frame.task.process, 1,
              "jitcc: compile error: " + compiled.status().to_string());
          return;
        }
        const auto& program = compiled.value();
        if (program.code.size() > kJitBufferSize) {
          frame.machine.kill_process(*frame.task.process, 1,
                                     "jitcc: code buffer too small");
          return;
        }
        // Model the compiler's CPU work: lexing/parsing/lowering.
        frame.charge(2000 + 40 * program.code.size());
        if (auto fault = frame.task.mem->write(code_buf, program.code)) {
          frame.machine.kill_process(*frame.task.process, 1,
                                     "jitcc: code write failed: " +
                                         fault->to_string());
          return;
        }
        frame.ctx.set_reg(Gpr::rax, program.entry_offset);
      },
      kern::CycleClass::kGuest);

  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path_addr = embed_string(a, source_path);

  // open + read + close: the compiler loading its input (static syscalls).
  a.mov(Gpr::rdi, path_addr);
  a.mov(Gpr::rsi, 0);
  emit_syscall(a, kern::kSysOpen);
  a.mov(Gpr::r12, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::r12);
  a.mov(Gpr::rsi, kScratchBuf);
  a.mov(Gpr::rdx, kJitBufferSize);
  emit_syscall(a, kern::kSysRead);
  a.mov(Gpr::rbx, Gpr::rax);  // source length, consumed by the compiler
  a.mov(Gpr::rdi, Gpr::r12);
  emit_syscall(a, kern::kSysClose);

  // mmap(NULL, size, RW, anon): fresh pages for the generated code.
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rsi, kJitBufferSize);
  a.mov(Gpr::rdx, mem::kProtRead | mem::kProtWrite);
  a.mov(Gpr::r10, 0);
  emit_syscall(a, kern::kSysMmap);
  a.mov(Gpr::r13, Gpr::rax);

  // JIT-compile into [r13]; entry offset lands in rax.
  a.hostcall(kern::Machine::host_index(compile_fn));
  a.mov(Gpr::r14, Gpr::rax);

  // mprotect(code, size, R|X): the W^X flip before running the code.
  a.mov(Gpr::rdi, Gpr::r13);
  a.mov(Gpr::rsi, kJitBufferSize);
  a.mov(Gpr::rdx, mem::kProtRead | mem::kProtExec);
  emit_syscall(a, kern::kSysMprotect);

  // Call the generated main (indirect through rax, like tcc -run).
  a.mov(Gpr::rax, Gpr::r13);
  a.add(Gpr::rax, Gpr::r14);
  a.call_rax();

  // exit_group(main's return value)
  a.mov(Gpr::rdi, Gpr::rax);
  emit_syscall(a, kern::kSysExitGroup);

  auto program = isa::make_program("jitcc-runner", a, entry);
  if (!program) return program.status();

  JitRunnerInfo info;
  info.program = std::move(program).value();
  info.static_syscall_sites = info.program.true_syscall_addresses().size();
  return info;
}

}  // namespace lzp::apps
