// The `tcc -run` analogue (paper §V-A): a runner program that reads C
// source, JIT-compiles it with minicc *at run time*, maps the generated code
// into fresh executable pages, and calls into it.
//
// Every syscall instruction inside the generated code is created after any
// load-time static scan — the exhaustiveness experiment: an interposer that
// only rewrites load-time code (zpoline) misses them; kernel-assisted
// interposers (SUD, lazypoline) do not.
#pragma once

#include <string>

#include "base/status.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"

namespace lzp::apps {

struct JitRunnerInfo {
  isa::Program program;
  // Syscall instructions statically present in the runner binary itself
  // (source reading, exit, ...), i.e. what a static scanner CAN find.
  std::size_t static_syscall_sites = 0;
};

// Builds the runner for `source_path` (a VFS path holding minicc source).
// The compilation step is a host binding on `machine` standing in for the
// compiler's own native code; the mmap/mprotect it performs and all of the
// *generated* code run as ordinary simulated code in the task.
Result<JitRunnerInfo> make_jit_runner(kern::Machine& machine,
                                      const std::string& source_path);

// The canonical §V-A source: a C program whose only unusual behaviour is a
// single non-libc getpid syscall.
[[nodiscard]] std::string exhaustiveness_test_source();

}  // namespace lzp::apps
