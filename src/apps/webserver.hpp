// Event-loop web server models for the Figure-5 macrobenchmarks.
//
// Two server profiles mirroring the syscall-per-request behaviour of the
// paper's workloads when serving static content over keepalive connections:
//
//   nginx:    epoll_wait, recvfrom, openat, fstat, writev(headers),
//             sendfile(body), close(file)                          [7/req]
//   lighttpd: epoll_wait, recvfrom, stat, openat, fstat,
//             writev(headers), sendfile(body), close(file)         [8/req]
//
// Each request also runs the server's user-space work (request parsing,
// header construction, logging), modeled as a calibrated per-request cycle
// charge. The server program is genuine simulated code: a real event loop
// whose every syscall goes through the kernel entry path, so interposition
// overhead composes exactly as it would in reality.
//
// Convention: the benchmark harness installs the listening socket as fd 3
// before starting the server task.
#pragma once

#include <cstdint>
#include <string>

#include "isa/assemble.hpp"
#include "kernel/machine.hpp"

namespace lzp::apps {

struct ServerProfile {
  std::string name;
  // User-space cycles per request (parsing, headers, logging).
  std::uint64_t app_compute_cycles = 72'000;
  // lighttpd stats the path before opening it; nginx does not.
  bool stat_before_open = true;
  std::uint64_t header_bytes = 128;
};

[[nodiscard]] ServerProfile nginx_profile();
[[nodiscard]] ServerProfile lighttpd_profile();

inline constexpr int kListenerFd = 3;

// Builds the server program (registers nothing; caller registers if needed).
// `resource_path` is the static file every request fetches. The returned
// program's image embeds a HOSTCALL that charges the profile's per-request
// compute; the binding is created on `machine` by this call.
Result<isa::Program> make_webserver(kern::Machine& machine,
                                    const ServerProfile& profile,
                                    const std::string& resource_path);

// Threaded variant: the main thread sets up epoll, clones `num_threads - 1`
// CLONE_VM|CLONE_THREAD workers, and joins the event loop itself. All
// threads share the address space (one trampoline, one set of rewritten
// sites) but each needs its own SUD selector — the paper's §IV-B
// multithreading scenario. Threads exit individually with exit(0).
Result<isa::Program> make_threaded_webserver(kern::Machine& machine,
                                             const ServerProfile& profile,
                                             const std::string& resource_path,
                                             int num_threads);

// One measurement: runs `workers` copies of the server program against a
// closed-loop client. Returns requests served and the wall-clock cycles
// (max over workers, since workers run on dedicated cores).
struct WebRunResult {
  std::uint64_t requests = 0;
  std::uint64_t wall_cycles = 0;
  // requests per simulated second at the given clock.
  [[nodiscard]] double throughput_rps(double ghz = 2.1) const {
    if (wall_cycles == 0) return 0.0;
    return static_cast<double>(requests) /
           (static_cast<double>(wall_cycles) / (ghz * 1e9));
  }
};

}  // namespace lzp::apps
