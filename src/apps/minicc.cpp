#include "apps/minicc.hpp"

#include <cctype>
#include <map>
#include <optional>

namespace lzp::apps::minicc {
namespace {

using isa::Assembler;
using isa::Gpr;

// Error propagation inside the compiler's Status-returning methods.
#define LZP_RETURN_IF_ERROR_R(expr)                   \
  do {                                                \
    ::lzp::Status lzp_status_r_ = (expr);             \
    if (!lzp_status_r_.is_ok()) return lzp_status_r_; \
  } while (false)

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t { kIdent, kNumber, kPunct, kEof };

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  std::int64_t value = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < source_.size() && source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        const std::size_t start = pos_;
        while (pos_ < source_.size() &&
               (std::isalnum(static_cast<unsigned char>(source_[pos_])) != 0 ||
                source_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokKind::kIdent,
                          std::string(source_.substr(start, pos_ - start)), 0,
                          start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        const std::size_t start = pos_;
        std::int64_t value = 0;
        while (pos_ < source_.size() &&
               std::isdigit(static_cast<unsigned char>(source_[pos_])) != 0) {
          value = value * 10 + (source_[pos_] - '0');
          ++pos_;
        }
        tokens.push_back({TokKind::kNumber, "", value, start});
        continue;
      }
      // Two-char punctuators first.
      static constexpr std::string_view kTwoChar[] = {"==", "!=", "<=", ">=",
                                                      "&&", "||"};
      // (both <= and >= are real operators below)
      bool matched = false;
      for (std::string_view two : kTwoChar) {
        if (source_.substr(pos_, 2) == two) {
          tokens.push_back({TokKind::kPunct, std::string(two), 0, pos_});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static constexpr std::string_view kOneChar = "(){};,=+-*/%<>";
      if (kOneChar.find(c) != std::string_view::npos) {
        tokens.push_back({TokKind::kPunct, std::string(1, c), 0, pos_});
        ++pos_;
        continue;
      }
      return make_error(StatusCode::kInvalidArgument,
                        "minicc: stray character '" + std::string(1, c) +
                            "' at offset " + std::to_string(pos_));
    }
    tokens.push_back({TokKind::kEof, "", 0, pos_});
    return tokens;
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser + single-pass code generator
// ---------------------------------------------------------------------------

constexpr std::size_t kMaxLocals = 32;

class Compiler {
 public:
  explicit Compiler(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CompiledProgram> run() {
    while (!at_eof()) {
      LZP_RETURN_IF_ERROR_R(parse_function());
    }
    auto main_it = functions_.find("main");
    if (main_it == functions_.end()) {
      return make_error(StatusCode::kNotFound, "minicc: no main()");
    }
    for (const auto& [name, info] : functions_) {
      if (!info.defined) {
        return make_error(StatusCode::kNotFound,
                          "minicc: call to undefined function " + name);
      }
      for (std::size_t arity : info.called_with) {
        if (static_cast<int>(arity) != info.declared_arity) {
          return make_error(StatusCode::kInvalidArgument,
                            "minicc: " + name + " called with " +
                                std::to_string(arity) + " args, declared " +
                                std::to_string(info.declared_arity));
        }
      }
    }
    CompiledProgram program;
    auto entry = assembler_.label_offset(main_it->second.label);
    if (!entry) return entry.status();
    program.entry_offset = entry.value();
    program.sites = assembler_.sites();
    auto code = assembler_.finish();
    if (!code) return code.status();
    program.code = std::move(code).value();
    return program;
  }

 private:
  struct FunctionInfo {
    Assembler::Label label = 0;
    bool defined = false;
    int declared_arity = -1;          // -1 until the definition is seen
    std::vector<std::size_t> called_with;  // arities observed at call sites
  };

  // --- token helpers -------------------------------------------------------
  [[nodiscard]] const Token& peek() const { return tokens_[index_]; }
  [[nodiscard]] bool at_eof() const { return peek().kind == TokKind::kEof; }
  Token advance() { return tokens_[index_++]; }

  [[nodiscard]] bool is_punct(std::string_view text) const {
    return peek().kind == TokKind::kPunct && peek().text == text;
  }
  [[nodiscard]] bool is_ident(std::string_view text) const {
    return peek().kind == TokKind::kIdent && peek().text == text;
  }
  Status expect_punct(std::string_view text) {
    if (!is_punct(text)) {
      return make_error(StatusCode::kInvalidArgument,
                        "minicc: expected '" + std::string(text) + "' near offset " +
                            std::to_string(peek().pos));
    }
    advance();
    return Status::ok();
  }

  FunctionInfo& function_entry(const std::string& name) {
    auto it = functions_.find(name);
    if (it == functions_.end()) {
      it = functions_.emplace(name,
                              FunctionInfo{assembler_.new_label(), false, -1, {}})
               .first;
    }
    return it->second;
  }

  // --- grammar -------------------------------------------------------------
  Status parse_function() {
    if (!is_ident("int")) {
      return make_error(StatusCode::kInvalidArgument,
                        "minicc: expected 'int' at top level");
    }
    advance();
    if (peek().kind != TokKind::kIdent) {
      return make_error(StatusCode::kInvalidArgument, "minicc: expected name");
    }
    const std::string name = advance().text;
    LZP_RETURN_IF_ERROR_R(expect_punct("("));
    // Parameter list: "int a, int b, ...". Parameters are pushed
    // left-to-right by the caller, so with the return address and saved rbp
    // on top, parameter i of n lives at [rbp + 16 + 8*(n-1-i)].
    std::vector<std::string> params;
    if (!is_punct(")")) {
      for (;;) {
        if (!is_ident("int")) {
          return make_error(StatusCode::kInvalidArgument,
                            "minicc: expected parameter type");
        }
        advance();
        if (peek().kind != TokKind::kIdent) {
          return make_error(StatusCode::kInvalidArgument,
                            "minicc: expected parameter name");
        }
        params.push_back(advance().text);
        if (is_punct(",")) {
          advance();
          continue;
        }
        break;
      }
    }
    LZP_RETURN_IF_ERROR_R(expect_punct(")"));

    FunctionInfo& info = function_entry(name);
    if (info.defined) {
      return make_error(StatusCode::kAlreadyExists,
                        "minicc: redefinition of " + name);
    }
    info.defined = true;
    info.declared_arity = static_cast<int>(params.size());
    assembler_.bind(info.label);

    // Prologue.
    locals_.clear();
    num_locals_ = 0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (locals_.count(params[i]) != 0) {
        return make_error(StatusCode::kAlreadyExists,
                          "minicc: duplicate parameter " + params[i]);
      }
      locals_[params[i]] = static_cast<std::int32_t>(
          16 + 8 * (params.size() - 1 - i));
    }
    epilogue_ = assembler_.new_label();
    assembler_.push(Gpr::rbp);
    assembler_.mov(Gpr::rbp, Gpr::rsp);
    assembler_.sub(Gpr::rsp, static_cast<std::int32_t>(8 * kMaxLocals));

    LZP_RETURN_IF_ERROR_R(parse_block());

    // Implicit `return 0`.
    assembler_.mov(Gpr::rax, 0);
    assembler_.bind(epilogue_);
    assembler_.mov(Gpr::rsp, Gpr::rbp);
    assembler_.pop(Gpr::rbp);
    assembler_.ret();
    return Status::ok();
  }

  Status parse_block() {
    LZP_RETURN_IF_ERROR_R(expect_punct("{"));
    while (!is_punct("}")) {
      if (at_eof()) {
        return make_error(StatusCode::kInvalidArgument, "minicc: unclosed block");
      }
      LZP_RETURN_IF_ERROR_R(parse_statement());
    }
    advance();  // '}'
    return Status::ok();
  }

  Status parse_statement() {
    if (is_ident("int")) {
      advance();
      if (peek().kind != TokKind::kIdent) {
        return make_error(StatusCode::kInvalidArgument, "minicc: expected name");
      }
      const std::string name = advance().text;
      if (num_locals_ >= kMaxLocals) {
        return make_error(StatusCode::kOutOfRange, "minicc: too many locals");
      }
      if (locals_.count(name) != 0) {
        return make_error(StatusCode::kAlreadyExists,
                          "minicc: redeclaration of " + name);
      }
      const std::int32_t disp =
          -8 * (static_cast<std::int32_t>(num_locals_) + 1);
      ++num_locals_;
      locals_[name] = disp;
      if (is_punct("=")) {
        advance();
        LZP_RETURN_IF_ERROR_R(parse_expr());
        store_local(disp);
      }
      return expect_punct(";");
    }
    if (is_ident("return")) {
      advance();
      LZP_RETURN_IF_ERROR_R(parse_expr());
      assembler_.jmp(epilogue_);
      return expect_punct(";");
    }
    if (is_ident("if")) {
      advance();
      LZP_RETURN_IF_ERROR_R(expect_punct("("));
      LZP_RETURN_IF_ERROR_R(parse_expr());
      LZP_RETURN_IF_ERROR_R(expect_punct(")"));
      const auto else_label = assembler_.new_label();
      const auto end_label = assembler_.new_label();
      assembler_.cmp(Gpr::rax, 0);
      assembler_.jz(else_label);
      LZP_RETURN_IF_ERROR_R(parse_block());
      assembler_.jmp(end_label);
      assembler_.bind(else_label);
      if (is_ident("else")) {
        advance();
        if (is_ident("if")) {
          // else-if chain: recurse into statement parsing.
          LZP_RETURN_IF_ERROR_R(parse_statement());
        } else {
          LZP_RETURN_IF_ERROR_R(parse_block());
        }
      }
      assembler_.bind(end_label);
      return Status::ok();
    }
    if (is_ident("while")) {
      advance();
      const auto head = assembler_.new_label();
      const auto end = assembler_.new_label();
      assembler_.bind(head);
      LZP_RETURN_IF_ERROR_R(expect_punct("("));
      LZP_RETURN_IF_ERROR_R(parse_expr());
      LZP_RETURN_IF_ERROR_R(expect_punct(")"));
      assembler_.cmp(Gpr::rax, 0);
      assembler_.jz(end);
      LZP_RETURN_IF_ERROR_R(parse_block());
      assembler_.jmp(head);
      assembler_.bind(end);
      return Status::ok();
    }
    // Assignment or expression statement.
    if (peek().kind == TokKind::kIdent && index_ + 1 < tokens_.size() &&
        tokens_[index_ + 1].kind == TokKind::kPunct &&
        tokens_[index_ + 1].text == "=") {
      const std::string name = advance().text;
      advance();  // '='
      auto disp = local_slot(name);
      if (!disp) return disp.status();
      LZP_RETURN_IF_ERROR_R(parse_expr());
      store_local(disp.value());
      return expect_punct(";");
    }
    LZP_RETURN_IF_ERROR_R(parse_expr());
    return expect_punct(";");
  }

  // expr := or ; or := and { "||" and } ; and := cmp { "&&" cmp }
  // Both logical operators short-circuit and normalize to 0/1.
  Status parse_expr() { return parse_or(); }

  Status parse_or() {
    LZP_RETURN_IF_ERROR_R(parse_and());
    if (!is_punct("||")) return Status::ok();
    const auto truthy = assembler_.new_label();
    const auto end = assembler_.new_label();
    assembler_.cmp(Gpr::rax, 0);
    assembler_.jnz(truthy);
    while (is_punct("||")) {
      advance();
      LZP_RETURN_IF_ERROR_R(parse_and());
      assembler_.cmp(Gpr::rax, 0);
      assembler_.jnz(truthy);
    }
    assembler_.mov(Gpr::rax, 0);
    assembler_.jmp(end);
    assembler_.bind(truthy);
    assembler_.mov(Gpr::rax, 1);
    assembler_.bind(end);
    return Status::ok();
  }

  Status parse_and() {
    LZP_RETURN_IF_ERROR_R(parse_cmp());
    if (!is_punct("&&")) return Status::ok();
    const auto falsy = assembler_.new_label();
    const auto end = assembler_.new_label();
    assembler_.cmp(Gpr::rax, 0);
    assembler_.jz(falsy);
    while (is_punct("&&")) {
      advance();
      LZP_RETURN_IF_ERROR_R(parse_cmp());
      assembler_.cmp(Gpr::rax, 0);
      assembler_.jz(falsy);
    }
    assembler_.mov(Gpr::rax, 1);
    assembler_.jmp(end);
    assembler_.bind(falsy);
    assembler_.mov(Gpr::rax, 0);
    assembler_.bind(end);
    return Status::ok();
  }

  // cmp := add (("=="|"!="|"<"|">"|"<="|">=") add)?
  Status parse_cmp() {
    LZP_RETURN_IF_ERROR_R(parse_add());
    if (peek().kind == TokKind::kPunct &&
        (peek().text == "==" || peek().text == "!=" || peek().text == "<" ||
         peek().text == ">" || peek().text == "<=" || peek().text == ">=")) {
      const std::string op = advance().text;
      assembler_.push(Gpr::rax);
      LZP_RETURN_IF_ERROR_R(parse_add());
      assembler_.mov(Gpr::rcx, Gpr::rax);
      assembler_.pop(Gpr::rax);
      assembler_.cmp(Gpr::rax, Gpr::rcx);
      const auto truthy = assembler_.new_label();
      const auto end = assembler_.new_label();
      // <= and >= jump to FALSE on the strict inverse and fall through to
      // the truthy path otherwise.
      if (op == "==") assembler_.jz(truthy);
      else if (op == "!=") assembler_.jnz(truthy);
      else if (op == "<") assembler_.jlt(truthy);
      else if (op == ">") assembler_.jgt(truthy);
      else if (op == "<=") {
        const auto falsy = assembler_.new_label();
        assembler_.jgt(falsy);
        assembler_.jmp(truthy);
        assembler_.bind(falsy);
      } else {  // ">="
        const auto falsy = assembler_.new_label();
        assembler_.jlt(falsy);
        assembler_.jmp(truthy);
        assembler_.bind(falsy);
      }
      assembler_.mov(Gpr::rax, 0);
      assembler_.jmp(end);
      assembler_.bind(truthy);
      assembler_.mov(Gpr::rax, 1);
      assembler_.bind(end);
    }
    return Status::ok();
  }

  Status parse_add() {
    LZP_RETURN_IF_ERROR_R(parse_mul());
    while (is_punct("+") || is_punct("-")) {
      const std::string op = advance().text;
      assembler_.push(Gpr::rax);
      LZP_RETURN_IF_ERROR_R(parse_mul());
      assembler_.mov(Gpr::rcx, Gpr::rax);
      assembler_.pop(Gpr::rax);
      if (op == "+") assembler_.add(Gpr::rax, Gpr::rcx);
      else assembler_.sub(Gpr::rax, Gpr::rcx);
    }
    return Status::ok();
  }

  Status parse_mul() {
    LZP_RETURN_IF_ERROR_R(parse_unary());
    while (is_punct("*") || is_punct("/") || is_punct("%")) {
      const std::string op = advance().text;
      assembler_.push(Gpr::rax);
      LZP_RETURN_IF_ERROR_R(parse_unary());
      assembler_.mov(Gpr::rcx, Gpr::rax);
      assembler_.pop(Gpr::rax);
      if (op == "*") assembler_.mul(Gpr::rax, Gpr::rcx);
      else if (op == "/") assembler_.div(Gpr::rax, Gpr::rcx);
      else assembler_.mod(Gpr::rax, Gpr::rcx);
    }
    return Status::ok();
  }

  Status parse_unary() {
    if (is_punct("-")) {
      advance();
      LZP_RETURN_IF_ERROR_R(parse_unary());
      assembler_.mov(Gpr::rcx, Gpr::rax);
      assembler_.mov(Gpr::rax, 0);
      assembler_.sub(Gpr::rax, Gpr::rcx);
      return Status::ok();
    }
    return parse_primary();
  }

  Status parse_primary() {
    if (is_punct("(")) {
      advance();
      LZP_RETURN_IF_ERROR_R(parse_expr());
      return expect_punct(")");
    }
    if (peek().kind == TokKind::kNumber) {
      assembler_.mov(Gpr::rax, static_cast<std::uint64_t>(advance().value));
      return Status::ok();
    }
    if (peek().kind == TokKind::kIdent) {
      const std::string name = advance().text;
      if (is_punct("(")) return parse_call(name);
      auto disp = local_slot(name);
      if (!disp) return disp.status();
      load_local(disp.value());
      return Status::ok();
    }
    return make_error(StatusCode::kInvalidArgument,
                      "minicc: expected expression near offset " +
                          std::to_string(peek().pos));
  }

  Status parse_call(const std::string& name) {
    LZP_RETURN_IF_ERROR_R(expect_punct("("));
    std::optional<std::size_t> syscall_arity;
    if (name == "syscall0") syscall_arity = 0;
    else if (name == "syscall1") syscall_arity = 1;
    else if (name == "syscall2") syscall_arity = 2;
    else if (name == "syscall3") syscall_arity = 3;

    std::size_t argc = 0;
    if (!is_punct(")")) {
      for (;;) {
        LZP_RETURN_IF_ERROR_R(parse_expr());
        assembler_.push(Gpr::rax);
        ++argc;
        if (is_punct(",")) {
          advance();
          continue;
        }
        break;
      }
    }
    LZP_RETURN_IF_ERROR_R(expect_punct(")"));

    if (syscall_arity.has_value()) {
      if (argc != *syscall_arity + 1) {
        return make_error(StatusCode::kInvalidArgument,
                          "minicc: " + name + " expects " +
                              std::to_string(*syscall_arity + 1) + " args");
      }
      // Stack top-down: last arg ... first arg (the syscall number).
      static constexpr Gpr kArgRegs[3] = {Gpr::rdi, Gpr::rsi, Gpr::rdx};
      for (std::size_t i = *syscall_arity; i > 0; --i) {
        assembler_.pop(kArgRegs[i - 1]);
      }
      assembler_.pop(Gpr::rax);  // the syscall number
      assembler_.syscall_();     // THE syscall instruction (JIT-generated!)
      return Status::ok();
    }

    // User call: arguments are already pushed left-to-right; the caller
    // cleans them up after the call (cdecl-style).
    FunctionInfo& callee = function_entry(name);
    callee.called_with.push_back(argc);
    assembler_.call(callee.label);
    if (argc > 0) {
      assembler_.add(Gpr::rsp, static_cast<std::int32_t>(8 * argc));
    }
    return Status::ok();
  }

  // --- locals & parameters (rbp-relative displacements) ----------------------
  Result<std::int32_t> local_slot(const std::string& name) const {
    auto it = locals_.find(name);
    if (it == locals_.end()) {
      return make_error(StatusCode::kNotFound, "minicc: unknown variable " + name);
    }
    return it->second;
  }
  void load_local(std::int32_t disp) {
    assembler_.load(Gpr::rax, Gpr::rbp, disp);
  }
  void store_local(std::int32_t disp) {
    assembler_.store(Gpr::rbp, disp, Gpr::rax);
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  Assembler assembler_;
  std::map<std::string, FunctionInfo> functions_;
  std::map<std::string, std::int32_t> locals_;  // name -> rbp displacement
  std::size_t num_locals_ = 0;
  Assembler::Label epilogue_ = 0;
};

#undef LZP_RETURN_IF_ERROR_R

}  // namespace

Result<CompiledProgram> compile(std::string_view source) {
  Lexer lexer(source);
  auto tokens = lexer.run();
  if (!tokens) return tokens.status();
  Compiler compiler(std::move(tokens).value());
  return compiler.run();
}

}  // namespace lzp::apps::minicc
