#include "apps/minilibc.hpp"

#include "kernel/syscalls.hpp"

namespace lzp::apps {

using isa::Gpr;

void emit_syscall(isa::Assembler& a, std::uint64_t nr) {
  a.mov(Gpr::rax, nr);
  a.syscall_();
}

void emit_syscall1(isa::Assembler& a, std::uint64_t nr, std::uint64_t arg0) {
  a.mov(Gpr::rdi, arg0);
  emit_syscall(a, nr);
}

void emit_syscall2(isa::Assembler& a, std::uint64_t nr, std::uint64_t arg0,
                   std::uint64_t arg1) {
  a.mov(Gpr::rdi, arg0);
  a.mov(Gpr::rsi, arg1);
  emit_syscall(a, nr);
}

void emit_syscall3(isa::Assembler& a, std::uint64_t nr, std::uint64_t arg0,
                   std::uint64_t arg1, std::uint64_t arg2) {
  a.mov(Gpr::rdi, arg0);
  a.mov(Gpr::rsi, arg1);
  a.mov(Gpr::rdx, arg2);
  emit_syscall(a, nr);
}

void emit_pthread_init_glibc231(isa::Assembler& a) {
  // Listing 1 (paper §IV-B), adapted to the sim ISA:
  //   mov xmm0, r12          ; r12 = &__stack_user, loaded into both
  //   punpcklqdq xmm0, xmm0  ; halves of xmm0
  //   syscall                ; set_tid_address
  //   syscall                ; set_robust_list
  //   movups [r12], xmm0     ; write '&__stack_user' to 'prev' + 'next'
  a.mov(Gpr::r12, kStackUserAddr);
  a.xmov_from_gpr(/*xmm=*/0, Gpr::r12);               // both lanes = r12
  emit_syscall1(a, kern::kSysSetTidAddress, kDataBase + 0x20);
  emit_syscall1(a, kern::kSysSetRobustList, kDataBase + 0x28);
  a.xstore(Gpr::r12, 0, /*xmm=*/0);                   // movups [r12], xmm0
}

void emit_ptmalloc_init_glibc239(isa::Assembler& a) {
  // Clear Linux glibc 2.39: the compiler prepopulates xmm1 with the arena
  // initialization pattern, then tcache seeding performs getrandom before
  // the arena fields are stored.
  a.mov(Gpr::r13, kMainArenaAddr);
  a.xmov(/*xmm=*/1, 0x0001000200030004ULL);
  emit_syscall3(a, kern::kSysGetrandom, kDataBase + 0x30, 16, 0);
  a.xstore(Gpr::r13, 0, /*xmm=*/1);
  a.xstore(Gpr::r13, 16, /*xmm=*/1);
}

void emit_plain_startup(isa::Assembler& a) {
  // Startup syscalls with no extended-state liveness across them.
  emit_syscall1(a, kern::kSysSetTidAddress, kDataBase + 0x20);
  emit_syscall1(a, kern::kSysSetRobustList, kDataBase + 0x28);
  emit_syscall3(a, kern::kSysMprotect, kDataBase, 4096, 3);
}

void emit_libc_init(isa::Assembler& a, LibcProfile profile, bool uses_pthread) {
  switch (profile) {
    case LibcProfile::kUbuntu2004:
      if (uses_pthread) {
        emit_pthread_init_glibc231(a);
      } else {
        emit_plain_startup(a);
      }
      break;
    case LibcProfile::kClearLinux:
      // ptmalloc_init runs in every program's startup path (paper: "in
      // Clear Linux, all programs are affected by a singular issue").
      emit_ptmalloc_init_glibc239(a);
      break;
  }
}

std::uint64_t embed_string(isa::Assembler& a, std::string_view text) {
  auto after = a.new_label();
  a.jmp(after);
  const std::uint64_t offset = a.offset();
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  bytes.push_back(0);
  a.db(bytes);
  a.bind(after);
  return 0x40'0000 + offset;
}

void emit_print(isa::Assembler& a, std::string_view text) {
  // Embed the text right here in the code stream and jump over it — the
  // data-in-code idiom (string literals in .text islands) that desyncs
  // linear-sweep disassembly.
  auto after = a.new_label();
  a.jmp(after);
  const std::uint64_t data_offset = a.offset();
  a.db(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  a.bind(after);
  // write(1, base + data_offset, len) — base is the conventional load base.
  a.mov(Gpr::rdi, 1);
  a.mov(Gpr::rsi, 0x40'0000 + data_offset);
  a.mov(Gpr::rdx, text.size());
  emit_syscall(a, kern::kSysWrite);
}

void emit_exit(isa::Assembler& a, int code) {
  emit_syscall1(a, kern::kSysExitGroup, static_cast<std::uint64_t>(code));
}

}  // namespace lzp::apps
