// Models of the ten coreutils evaluated in the paper's Table III, buildable
// against either libc profile. Each program performs a realistic syscall
// sequence for its utility plus the profile's libc startup path; whether a
// given (utility, profile) pair has a cross-syscall xstate expectation
// matches the paper's measurements:
//
//   Ubuntu 20.04 / glibc 2.31: ls, mkdir, mv, cp link the pthread-enabled
//   libc init (Listing 1) -> affected (4/10 = the paper's "40%"); the rest
//   take the plain startup path -> unaffected.
//   Clear Linux / glibc 2.39: every program runs ptmalloc_init -> affected.
#pragma once

#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "isa/assemble.hpp"
#include "kernel/vfs.hpp"

namespace lzp::apps {

inline const std::vector<std::string>& coreutil_names() {
  static const std::vector<std::string> kNames = {
      "ls", "pwd", "chmod", "mkdir", "mv", "cp", "rm", "touch", "cat", "clear"};
  return kNames;
}

// Whether this utility's Ubuntu build initializes pthreads (the paper's
// Listing-1 pattern). On Clear Linux the ptmalloc pattern is unconditional.
[[nodiscard]] bool ubuntu_build_uses_pthread(const std::string& name);

// Builds the program image for one utility under one libc profile.
Result<isa::Program> make_coreutil(const std::string& name, LibcProfile profile);

// Seeds the VFS with the files the utilities operate on.
void populate_coreutil_fixtures(kern::Vfs& vfs);

}  // namespace lzp::apps
