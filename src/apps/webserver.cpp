#include "apps/webserver.hpp"

#include "apps/minilibc.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::apps {

using isa::Gpr;

namespace {

constexpr std::uint64_t kIovAddr = kScratchBuf + 512;   // struct iovec[1]
constexpr std::uint64_t kHdrAddr = kScratchBuf + 1024;  // response headers
// Thread stacks for the threaded variant (within the data region).
constexpr std::uint64_t kThreadStackBase = kDataBase + 0x20000;
constexpr std::uint64_t kThreadStackSize = 0x4000;

// Binds the per-request user-space work (request parsing, header building,
// logging) as a host charge for this profile.
std::uint64_t bind_applogic(kern::Machine& machine,
                            const ServerProfile& profile) {
  const std::uint64_t compute = profile.app_compute_cycles;
  return machine.bind_host(
      "webserver.applogic." + profile.name,
      [compute](kern::HostFrame& frame) { frame.charge(compute); },
      kern::CycleClass::kGuest);
}

// epfd = epoll_create1(0) -> rbx; epoll_ctl(ADD, listener); prebuild the
// header iovec at kIovAddr.
void emit_server_setup(isa::Assembler& a, const ServerProfile& profile) {
  emit_syscall1(a, kern::kSysEpollCreate1, 0);
  a.mov(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, 1);
  a.mov(Gpr::rdx, kListenerFd);
  emit_syscall(a, kern::kSysEpollCtl);

  a.mov(Gpr::r9, kIovAddr);
  a.mov(Gpr::r8, kHdrAddr);
  a.store(Gpr::r9, 0, Gpr::r8);
  a.mov(Gpr::r8, profile.header_bytes);
  a.store(Gpr::r9, 8, Gpr::r8);
}

// The event loop. Expects rbx = epfd. `thread_exit` selects exit(0)
// (per-thread) vs exit_group(0) (whole process).
void emit_event_loop(isa::Assembler& a, const ServerProfile& profile,
                     std::uint64_t applogic, std::uint64_t path_addr,
                     bool thread_exit) {
  const auto loop = a.new_label();
  const auto accept_path = a.new_label();
  const auto close_conn = a.new_label();
  const auto done = a.new_label();

  a.bind(loop);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, 0);
  a.mov(Gpr::rdx, 0);
  emit_syscall(a, kern::kSysEpollWait);  // fd+1, 1 = retry, 0 = done
  a.cmp(Gpr::rax, 0);
  a.jz(done);
  a.cmp(Gpr::rax, 1);
  a.jz(loop);  // nothing for this worker right now
  a.mov(Gpr::r12, Gpr::rax);
  a.sub(Gpr::r12, 1);
  a.cmp(Gpr::r12, kListenerFd);
  a.jz(accept_path);

  // Readable connection in r12: read the request.
  a.mov(Gpr::rdi, Gpr::r12);
  a.mov(Gpr::rsi, kScratchBuf);
  a.mov(Gpr::rdx, 4096);
  emit_syscall(a, kern::kSysRecvfrom);
  a.cmp(Gpr::rax, 0);
  a.jz(close_conn);  // orderly close from the client

  // User-space request handling (parse, route, build headers, log).
  a.hostcall(kern::Machine::host_index(applogic));

  if (profile.stat_before_open) {
    a.mov(Gpr::rdi, path_addr);
    a.mov(Gpr::rsi, kStatBuf);
    emit_syscall(a, kern::kSysStat);
  }

  // openat(AT_FDCWD, path, O_RDONLY) -> r13
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rsi, path_addr);
  a.mov(Gpr::rdx, 0);
  emit_syscall(a, kern::kSysOpenat);
  a.mov(Gpr::r13, Gpr::rax);

  // fstat(file) -> r14 = size
  a.mov(Gpr::rdi, Gpr::r13);
  a.mov(Gpr::rsi, kStatBuf);
  emit_syscall(a, kern::kSysFstat);
  a.mov(Gpr::r9, kStatBuf);
  a.load(Gpr::r14, Gpr::r9, 0);

  // writev(conn, iov, 1): response headers.
  a.mov(Gpr::rdi, Gpr::r12);
  a.mov(Gpr::rsi, kIovAddr);
  a.mov(Gpr::rdx, 1);
  emit_syscall(a, kern::kSysWritev);

  // sendfile(conn, file, NULL, size): the body.
  a.mov(Gpr::rdi, Gpr::r12);
  a.mov(Gpr::rsi, Gpr::r13);
  a.mov(Gpr::rdx, 0);
  a.mov(Gpr::r10, Gpr::r14);
  emit_syscall(a, kern::kSysSendfile);

  // close(file)
  a.mov(Gpr::rdi, Gpr::r13);
  emit_syscall(a, kern::kSysClose);
  a.jmp(loop);

  a.bind(accept_path);
  a.mov(Gpr::rdi, kListenerFd);
  a.mov(Gpr::rsi, 0);
  a.mov(Gpr::rdx, 0);
  emit_syscall(a, kern::kSysAccept4);
  a.jmp(loop);

  a.bind(close_conn);
  a.mov(Gpr::rdi, Gpr::r12);
  emit_syscall(a, kern::kSysClose);
  a.jmp(loop);

  a.bind(done);
  if (thread_exit) {
    a.mov(Gpr::rdi, 0);
    a.mov(Gpr::rax, kern::kSysExit);
    a.syscall_();
  } else {
    emit_exit(a, 0);
  }
}

}  // namespace

ServerProfile nginx_profile() {
  ServerProfile profile;
  profile.name = "nginx";
  profile.app_compute_cycles = 72'000;
  profile.stat_before_open = false;  // nginx opens directly (open_file_cache off)
  profile.header_bytes = 160;
  return profile;
}

ServerProfile lighttpd_profile() {
  ServerProfile profile;
  profile.name = "lighttpd";
  profile.app_compute_cycles = 64'000;
  profile.stat_before_open = true;  // lighttpd stat()s before opening
  profile.header_bytes = 128;
  return profile;
}

Result<isa::Program> make_webserver(kern::Machine& machine,
                                    const ServerProfile& profile,
                                    const std::string& resource_path) {
  const std::uint64_t applogic = bind_applogic(machine, profile);

  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path_addr = embed_string(a, resource_path);
  emit_server_setup(a, profile);
  emit_event_loop(a, profile, applogic, path_addr, /*thread_exit=*/false);
  return isa::make_program(profile.name + "-worker", a, entry);
}

Result<isa::Program> make_threaded_webserver(kern::Machine& machine,
                                             const ServerProfile& profile,
                                             const std::string& resource_path,
                                             int num_threads) {
  if (num_threads < 1 || num_threads > 8) {
    return make_error(StatusCode::kInvalidArgument,
                      "threaded server supports 1..8 threads");
  }
  const std::uint64_t applogic = bind_applogic(machine, profile);

  isa::Assembler a;
  const auto entry = a.new_label();
  const auto spawn_loop = a.new_label();
  const auto serve = a.new_label();
  a.bind(entry);
  const std::uint64_t path_addr = embed_string(a, resource_path);
  emit_server_setup(a, profile);

  // Spawn num_threads-1 CLONE_VM|CLONE_THREAD workers; each child jumps
  // straight into the (shared) event loop with its own stack carved out of
  // the data region. rbx (the epfd) is inherited through the clone.
  a.mov(Gpr::r15, static_cast<std::uint64_t>(num_threads - 1));
  a.bind(spawn_loop);
  a.cmp(Gpr::r15, 0);
  a.jz(serve);
  a.mov(Gpr::rax, Gpr::r15);
  a.mov(Gpr::rcx, kThreadStackSize);
  a.mul(Gpr::rax, Gpr::rcx);
  a.mov(Gpr::rsi, kThreadStackBase);
  a.add(Gpr::rsi, Gpr::rax);        // child stack top
  a.mov(Gpr::rdi, kern::kCloneVm | kern::kCloneThread);
  a.mov(Gpr::rax, kern::kSysClone);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(serve);                      // child: enter the event loop
  a.sub(Gpr::r15, 1);
  a.jmp(spawn_loop);

  a.bind(serve);
  emit_event_loop(a, profile, applogic, path_addr, /*thread_exit=*/true);
  return isa::make_program(
      profile.name + "-threaded-" + std::to_string(num_threads), a, entry);
}

}  // namespace lzp::apps
