// minicc — a miniature C compiler targeting the simulated ISA.
//
// Stands in for the Tiny C Compiler in the paper's §V-A exhaustiveness
// experiment (`tcc -run`): the JIT runner compiles C source *at run time*
// and executes the generated code, whose syscall instructions did not exist
// when a static rewriter scanned the binary.
//
// The language is a practical C subset:
//   * functions:       int name() { ... }   (zero-argument user functions)
//   * declarations:    int x = expr;  int y;
//   * statements:      assignment, if/else, while, return, expression
//   * expressions:     + - * == != < >, parentheses, integer literals,
//                      variables, zero-arg user calls
//   * builtins:        syscall0(nr) ... syscall3(nr, a, b, c) — emit a real
//                      SYSCALL instruction with the x86-64 argument registers
//
// Code generation is a classic one-pass stack-machine lowering: expression
// results in rax, temporaries spilled with push/pop, locals in rbp-relative
// slots.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "isa/assemble.hpp"

namespace lzp::apps::minicc {

struct CompiledProgram {
  std::vector<std::uint8_t> code;  // position-independent (rel32 calls only)
  std::uint64_t entry_offset = 0;  // offset of main()
  std::vector<isa::AssembledSite> sites;  // ground truth incl. syscall sites

  [[nodiscard]] std::size_t syscall_site_count() const noexcept {
    std::size_t count = 0;
    for (const auto& site : sites) {
      if (!site.is_data && site.op == isa::Op::kSyscall) ++count;
    }
    return count;
  }
};

// Compiles a translation unit. Fails with a diagnostic on syntax/semantic
// errors (unknown variables, unbound functions, missing main).
Result<CompiledProgram> compile(std::string_view source);

}  // namespace lzp::apps::minicc
