// A miniature libc model: emitter helpers that generate the startup and
// syscall-wrapper code sequences real glibc emits — in particular the two
// extended-state-across-syscall idioms the paper's Table III traces back to
// real distributions:
//
//   * glibc 2.31 (Ubuntu 20.04) pthread initialization (paper Listing 1):
//     an SSE register is populated with &__stack_user *before* the
//     set_tid_address and set_robust_list syscalls, and stored with movups
//     only after both return.
//   * glibc 2.39 (Intel Clear Linux) ptmalloc_init: an xmm register is
//     pre-populated to initialize main_arena, and a getrandom syscall
//     intervenes before the store.
#pragma once

#include <cstdint>
#include <string>

#include "isa/assemble.hpp"

namespace lzp::apps {

// Distro/libc profile a program is "linked against" (Table III columns).
enum class LibcProfile : std::uint8_t {
  kUbuntu2004,    // glibc 2.31, x86-64-v1 baseline
  kClearLinux,    // glibc 2.39, x86-64-v3 paths enabled
};

[[nodiscard]] constexpr std::string_view to_string(LibcProfile profile) noexcept {
  switch (profile) {
    case LibcProfile::kUbuntu2004: return "Ubuntu 20.04 (glibc 2.31)";
    case LibcProfile::kClearLinux: return "Clear Linux (glibc 2.39)";
  }
  return "?";
}

// Fixed addresses inside the data region used by the libc model.
inline constexpr std::uint64_t kDataBase = 0x60'0000;
inline constexpr std::uint64_t kStackUserAddr = kDataBase + 0x100;  // __stack_user
inline constexpr std::uint64_t kMainArenaAddr = kDataBase + 0x140;  // main_arena
inline constexpr std::uint64_t kScratchBuf = kDataBase + 0x1000;    // IO buffer
inline constexpr std::uint64_t kStatBuf = kDataBase + 0x800;
inline constexpr std::uint64_t kPathBuf = kDataBase + 0x900;

// Emits `syscall` with up to 3 immediate arguments (number in rax).
void emit_syscall(isa::Assembler& a, std::uint64_t nr);
void emit_syscall1(isa::Assembler& a, std::uint64_t nr, std::uint64_t arg0);
void emit_syscall2(isa::Assembler& a, std::uint64_t nr, std::uint64_t arg0,
                   std::uint64_t arg1);
void emit_syscall3(isa::Assembler& a, std::uint64_t nr, std::uint64_t arg0,
                   std::uint64_t arg1, std::uint64_t arg2);

// Paper Listing 1: the glibc 2.31 __pthread_initialize_minimal sequence.
// xmm0 is live across set_tid_address and set_robust_list.
void emit_pthread_init_glibc231(isa::Assembler& a);

// Clear Linux glibc 2.39 ptmalloc_init: xmm1 prepopulated to initialize
// main_arena fields, with an intervening getrandom.
void emit_ptmalloc_init_glibc239(isa::Assembler& a);

// Startup sequence without any cross-syscall xstate liveness (what the
// unaffected Ubuntu utilities execute).
void emit_plain_startup(isa::Assembler& a);

// Full libc initialization for a profile. `uses_pthread` selects whether
// this binary's init path runs the Listing-1 code (Ubuntu: only some
// utilities; Clear Linux: the ptmalloc pattern runs unconditionally).
void emit_libc_init(isa::Assembler& a, LibcProfile profile, bool uses_pthread);

// Embeds a NUL-terminated string in the code stream (jumping over it) and
// returns its absolute run-time address, assuming the conventional load
// base. Data interleaved with code is exactly what desyncs linear sweeps.
std::uint64_t embed_string(isa::Assembler& a, std::string_view text);

// write(1, <text embedded in image>, len). Emits the data inline, jumping
// over it — a classic data-in-code pattern that also stresses linear-sweep
// disassembly.
void emit_print(isa::Assembler& a, std::string_view text);

// exit_group(code).
void emit_exit(isa::Assembler& a, int code);

}  // namespace lzp::apps
