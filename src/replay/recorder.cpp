#include "replay/recorder.hpp"

#include <algorithm>

#include "kernel/syscalls.hpp"

// GCC 12's -Wmaybe-uninitialized misfires on the std::variant move path of
// vector reallocation when an alternative holds a std::vector (here the
// MemPatch list inside SyscallEvent): it models the moved-from element's
// vector pointers as possibly uninitialized even though the variant's
// discriminant guarantees the active alternative was constructed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace lzp::replay {

std::uint64_t hash_registers(const cpu::CpuContext& ctx) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto reg : ctx.gpr) mix(reg);
  mix(ctx.rip);
  return h;
}

bool must_execute_on_replay(std::uint64_t nr) noexcept {
  using namespace kern;  // NOLINT(google-build-using-namespace)
  switch (nr) {
    // Address-space state later instructions depend on.
    case kSysMmap:
    case kSysMprotect:
    case kSysMunmap:
    case kSysBrk:
    // Task lifecycle.
    case kSysClone:
    case kSysFork:
    case kSysVfork:
    case kSysExecve:
    case kSysExit:
    case kSysExitGroup:
    case kSysSetTidAddress:
    case kSysSetRobustList:
    // Signal state: dispositions, masks, frames, and intra-machine kills
    // (these recur deterministically during replay and must take effect).
    case kSysRtSigaction:
    case kSysRtSigprocmask:
    case kSysRtSigreturn:
    case kSysSigaltstack:
    case kSysKill:
    case kSysTgkill:
    // Interception control (the mechanism under replay re-arms itself).
    case kSysPrctl:
    case kSysArchPrctl:
    case kSysSeccomp:
    // Pure-no-op waits (cheap, and futex wakes matter for threads).
    case kSysSchedYield:
    case kSysFutex:
    case kSysNanosleep:
      return true;
    default:
      return false;
  }
}

std::vector<MemPatch> capture_out_buffers(
    interpose::InterposeContext& ctx, std::uint64_t nr,
    const std::array<std::uint64_t, 6>& args, std::uint64_t result) {
  std::vector<MemPatch> patches;
  if (kern::is_error_result(result) || must_execute_on_replay(nr)) {
    return patches;
  }

  auto capture = [&](std::uint64_t addr, std::uint64_t len) {
    if (len == 0) return;
    auto bytes = ctx.read_bytes(addr, len);
    if (!bytes) return;  // kernel write must have failed too; nothing to save
    patches.push_back(MemPatch{addr, std::move(bytes).value()});
  };

  using namespace kern;  // NOLINT(google-build-using-namespace)
  switch (nr) {
    case kSysRead:        // file or conn payload
    case kSysRecvfrom:
    case kSysGetdents64:
      capture(args[1], result);
      break;
    case kSysGetrandom:
    case kSysGetcwd:
      capture(args[0], result);
      break;
    case kSysStat:
    case kSysFstat:
      capture(args[1], 16);  // size u64 + mode/is_dir u64
      break;
    case kSysClockGettime:
      capture(args[1], 16);  // sec u64 + nsec u64
      break;
    case kSysPipe2:
      capture(args[0], 8);  // rfd u32 | wfd u32
      break;
    default:
      break;  // no out-buffers modeled for this syscall
  }
  return patches;
}

void Recorder::attach(kern::Machine& machine, std::uint64_t rng_seed,
                      std::string mechanism, std::string workload) {
  machine.reseed_rng(rng_seed);
  trace_.header.rng_seed = rng_seed;
  trace_.header.mechanism = std::move(mechanism);
  trace_.header.workload = std::move(workload);

  slice_obs_id_ = machine.add_slice_observer(
      [this](const kern::Task& task, std::uint64_t steps) {
        trace_.events.push_back(ScheduleEvent{task.tid, steps});
      });
  signal_obs_id_ = machine.add_signal_observer(
      [this, &machine](const kern::Task& task, const kern::SigInfo& info) {
        SignalEvent event;
        event.tid = task.tid;
        event.signo = info.signo;
        event.code = info.code;
        event.syscall_nr = info.syscall_nr;
        std::copy(std::begin(info.syscall_args), std::end(info.syscall_args),
                  event.syscall_args.begin());
        event.ip_after_syscall = info.ip_after_syscall;
        event.fault_addr = info.fault_addr;
        event.external = info.external;
        event.insns_retired = task.insns_retired;
        event.machine_insns = machine.total_steps();
        trace_.events.push_back(event);
      });
  nondet_obs_id_ = machine.add_nondet_observer(
      [this](const kern::Task& task, std::uint64_t nr,
             kern::Machine::NondetSource source) {
        NondetEvent event{task.tid, nr, static_cast<std::uint8_t>(source)};
        trace_.events.push_back(event);
        unclaimed_nondet_.push_back(event);
      });
}

void Recorder::detach(kern::Machine& machine) {
  machine.remove_slice_observer(slice_obs_id_);
  machine.remove_signal_observer(signal_obs_id_);
  machine.remove_nondet_observer(nondet_obs_id_);
  slice_obs_id_ = signal_obs_id_ = nondet_obs_id_ = 0;
}

bool Recorder::pre_execute(interpose::InterposeContext& ctx, std::uint64_t*) {
  // ptrace entry stop: registers and counters still hold pre-execution state;
  // remember them for the exit stop, where handle() records the event.
  pending_entry_.valid = true;
  pending_entry_.tid = ctx.task().tid;
  pending_entry_.insns_retired = ctx.task().insns_retired;
  pending_entry_.reg_hash = hash_registers(ctx.task().ctx);
  return false;
}

std::uint64_t Recorder::handle(interpose::InterposeContext& ctx) {
  const auto req = ctx.request();  // snapshot before inner handler mutates it

  SyscallEvent event;
  event.tid = ctx.task().tid;
  event.nr = req.nr;
  event.args = req.args;
  if (pending_entry_.valid && pending_entry_.tid == event.tid) {
    event.insns_retired = pending_entry_.insns_retired;
    event.reg_hash = pending_entry_.reg_hash;
  } else {
    event.insns_retired = ctx.task().insns_retired;
    event.reg_hash = hash_registers(ctx.task().ctx);
  }
  pending_entry_.valid = false;

  event.result = inner_->handle(ctx);
  event.patches = capture_out_buffers(ctx, req.nr, req.args, event.result);

  // Record-mode cost: event framing plus copying the captured buffers.
  std::uint64_t captured_bytes = 0;
  for (const auto& patch : event.patches) captured_bytes += patch.bytes.size();
  const auto& costs = ctx.machine().costs();
  kern::ScopedCycleClass scope(ctx.task(), kern::CycleClass::kDecorator,
                               kern::kDetailRecorder);
  ctx.machine().charge(ctx.task(),
                       costs.record_event +
                           (captured_bytes + 7) / 8 * costs.record_capture_qword);

  // Any nondeterministic input this task consumed since its previous event
  // flowed through the syscall just captured: claim it.
  std::erase_if(unclaimed_nondet_, [&event](const NondetEvent& nd) {
    return nd.tid == event.tid;
  });

  const std::uint64_t result = event.result;
  trace_.events.push_back(std::move(event));
  return result;
}

std::vector<std::string> Recorder::audit_report() const {
  std::vector<std::string> report;
  report.reserve(unclaimed_nondet_.size());
  for (const auto& nd : unclaimed_nondet_) {
    report.push_back("uncaptured nondeterminism: tid " + std::to_string(nd.tid) +
                     " consumed source " + std::to_string(int{nd.source}) +
                     " via " + std::string(kern::syscall_name(nd.nr)));
  }
  return report;
}

}  // namespace lzp::replay
