#include "replay/trace.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "kernel/syscalls.hpp"

namespace lzp::replay {
namespace {

// --- little-endian stream helpers -------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const std::vector<std::uint8_t>& v) {
    out_.insert(out_.end(), v.begin(), v.end());
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  // Patches a previously written u32 at `pos` (frame-length backfill).
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > in_.size()) return false;
    *v = in_[pos_++];
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > in_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > in_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    return true;
  }
  bool bytes(std::size_t n, std::vector<std::uint8_t>* v) {
    if (pos_ + n > in_.size()) return false;
    v->assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
              in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool str(std::string* s) {
    std::uint32_t n = 0;
    if (!u32(&n) || pos_ + n > in_.size()) return false;
    s->assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
              in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool skip(std::size_t n) {
    if (pos_ + n > in_.size()) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ >= in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

void write_event(Writer& w, const Event& event) {
  w.u8(static_cast<std::uint8_t>(event_kind(event)));
  const std::size_t len_pos = w.size();
  w.u32(0);  // frame length, backfilled below
  const std::size_t payload_start = w.size();

  if (const auto* sc = std::get_if<SyscallEvent>(&event)) {
    w.u32(static_cast<std::uint32_t>(sc->tid));
    w.u64(sc->nr);
    for (const auto arg : sc->args) w.u64(arg);
    w.u64(sc->result);
    w.u64(sc->insns_retired);
    w.u64(sc->reg_hash);
    w.u32(static_cast<std::uint32_t>(sc->patches.size()));
    for (const auto& patch : sc->patches) {
      w.u64(patch.addr);
      w.u32(static_cast<std::uint32_t>(patch.bytes.size()));
      w.bytes(patch.bytes);
    }
  } else if (const auto* sd = std::get_if<ScheduleEvent>(&event)) {
    w.u32(static_cast<std::uint32_t>(sd->tid));
    w.u64(sd->steps);
  } else if (const auto* sg = std::get_if<SignalEvent>(&event)) {
    w.u32(static_cast<std::uint32_t>(sg->tid));
    w.u32(static_cast<std::uint32_t>(sg->signo));
    w.u32(static_cast<std::uint32_t>(sg->code));
    w.u64(sg->syscall_nr);
    for (const auto arg : sg->syscall_args) w.u64(arg);
    w.u64(sg->ip_after_syscall);
    w.u64(sg->fault_addr);
    w.u8(sg->external ? 1 : 0);
    w.u64(sg->insns_retired);
    w.u64(sg->machine_insns);
  } else if (const auto* nd = std::get_if<NondetEvent>(&event)) {
    w.u32(static_cast<std::uint32_t>(nd->tid));
    w.u64(nd->nr);
    w.u8(nd->source);
  }

  w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - payload_start));
}

bool read_event(Reader& r, EventKind kind, Event* out) {
  switch (kind) {
    case EventKind::kSyscall: {
      SyscallEvent sc;
      std::uint32_t tid = 0;
      std::uint32_t n_patches = 0;
      if (!r.u32(&tid) || !r.u64(&sc.nr)) return false;
      for (auto& arg : sc.args) {
        if (!r.u64(&arg)) return false;
      }
      if (!r.u64(&sc.result) || !r.u64(&sc.insns_retired) ||
          !r.u64(&sc.reg_hash) || !r.u32(&n_patches)) {
        return false;
      }
      sc.tid = static_cast<kern::Tid>(tid);
      sc.patches.reserve(n_patches);
      for (std::uint32_t i = 0; i < n_patches; ++i) {
        MemPatch patch;
        std::uint32_t len = 0;
        if (!r.u64(&patch.addr) || !r.u32(&len) || !r.bytes(len, &patch.bytes)) {
          return false;
        }
        sc.patches.push_back(std::move(patch));
      }
      *out = std::move(sc);
      return true;
    }
    case EventKind::kSchedule: {
      ScheduleEvent sd;
      std::uint32_t tid = 0;
      if (!r.u32(&tid) || !r.u64(&sd.steps)) return false;
      sd.tid = static_cast<kern::Tid>(tid);
      *out = sd;
      return true;
    }
    case EventKind::kSignal: {
      SignalEvent sg;
      std::uint32_t tid = 0;
      std::uint32_t signo = 0;
      std::uint32_t code = 0;
      std::uint8_t external = 0;
      if (!r.u32(&tid) || !r.u32(&signo) || !r.u32(&code) ||
          !r.u64(&sg.syscall_nr)) {
        return false;
      }
      for (auto& arg : sg.syscall_args) {
        if (!r.u64(&arg)) return false;
      }
      if (!r.u64(&sg.ip_after_syscall) || !r.u64(&sg.fault_addr) ||
          !r.u8(&external) || !r.u64(&sg.insns_retired) ||
          !r.u64(&sg.machine_insns)) {
        return false;
      }
      sg.tid = static_cast<kern::Tid>(tid);
      sg.signo = static_cast<std::int32_t>(signo);
      sg.code = static_cast<std::int32_t>(code);
      sg.external = external != 0;
      *out = sg;
      return true;
    }
    case EventKind::kNondet: {
      NondetEvent nd;
      std::uint32_t tid = 0;
      if (!r.u32(&tid) || !r.u64(&nd.nr) || !r.u8(&nd.source)) return false;
      nd.tid = static_cast<kern::Tid>(tid);
      *out = nd;
      return true;
    }
  }
  return false;
}

}  // namespace

EventKind event_kind(const Event& event) noexcept {
  if (std::holds_alternative<SyscallEvent>(event)) return EventKind::kSyscall;
  if (std::holds_alternative<ScheduleEvent>(event)) return EventKind::kSchedule;
  if (std::holds_alternative<SignalEvent>(event)) return EventKind::kSignal;
  return EventKind::kNondet;
}

std::string_view event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSyscall: return "syscall";
    case EventKind::kSchedule: return "sched";
    case EventKind::kSignal: return "signal";
    case EventKind::kNondet: return "nondet";
  }
  return "?";
}

std::size_t Trace::count(EventKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& event : events) {
    if (event_kind(event) == kind) ++n;
  }
  return n;
}

std::vector<std::uint8_t> Trace::serialize() const {
  Writer w;
  w.u32(kTraceMagic);
  w.u32(header.version);
  w.u64(header.rng_seed);
  w.str(header.mechanism);
  w.str(header.workload);
  w.u64(events.size());
  for (const auto& event : events) write_event(w, event);
  return w.take();
}

Result<Trace> Trace::deserialize(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  std::uint32_t magic = 0;
  Trace trace;
  if (!r.u32(&magic) || magic != kTraceMagic) {
    return Status{StatusCode::kInvalidArgument, "trace: bad magic"};
  }
  if (!r.u32(&trace.header.version) || trace.header.version != kTraceVersion) {
    return Status{StatusCode::kInvalidArgument, "trace: unsupported version"};
  }
  std::uint64_t count = 0;
  if (!r.u64(&trace.header.rng_seed) || !r.str(&trace.header.mechanism) ||
      !r.str(&trace.header.workload) || !r.u64(&count)) {
    return Status{StatusCode::kInvalidArgument, "trace: truncated header"};
  }
  trace.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint8_t kind = 0;
    std::uint32_t len = 0;
    if (!r.u8(&kind) || !r.u32(&len)) {
      return Status{StatusCode::kInvalidArgument, "trace: truncated frame"};
    }
    if (kind == 0 || kind > static_cast<std::uint8_t>(EventKind::kNondet)) {
      // Unknown event kind from a newer writer: skip the frame.
      if (!r.skip(len)) {
        return Status{StatusCode::kInvalidArgument, "trace: truncated frame"};
      }
      continue;
    }
    Event event;
    if (!read_event(r, static_cast<EventKind>(kind), &event)) {
      return Status{StatusCode::kInvalidArgument,
                    "trace: malformed event " + std::to_string(i)};
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

Status Trace::save(const std::string& path) const {
  const auto bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status{StatusCode::kPermissionDenied, "trace: cannot open " + path};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status{StatusCode::kInternal, "trace: short write to " + path};
  return Status::ok();
}

Result<Trace> Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status{StatusCode::kNotFound, "trace: cannot open " + path};
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status{StatusCode::kInternal, "trace: short read from " + path};
  }
  return deserialize(bytes);
}

std::string event_to_string(const Event& event) {
  std::ostringstream out;
  if (const auto* sc = std::get_if<SyscallEvent>(&event)) {
    out << "[tid " << sc->tid << " @" << sc->insns_retired << "] "
        << kern::syscall_name(sc->nr) << "(";
    for (std::size_t i = 0; i < 6; ++i) {
      if (i > 0) out << ", ";
      out << "0x" << std::hex << sc->args[i] << std::dec;
    }
    out << ") = ";
    if (kern::is_error_result(sc->result)) {
      out << "-" << (~sc->result + 1);
    } else {
      out << sc->result;
    }
    if (!sc->patches.empty()) {
      std::size_t total = 0;
      for (const auto& patch : sc->patches) total += patch.bytes.size();
      out << "  <" << sc->patches.size() << " patch(es), " << total << " bytes>";
    }
  } else if (const auto* sd = std::get_if<ScheduleEvent>(&event)) {
    out << "[sched] tid " << sd->tid << " ran " << sd->steps << " steps";
  } else if (const auto* sg = std::get_if<SignalEvent>(&event)) {
    out << "[tid " << sg->tid << " @" << sg->insns_retired << "] --- "
        << kern::signal_name(sg->signo)
        << (sg->external ? " (external)" : "")
        << " machine_insns=" << sg->machine_insns << " ---";
  } else if (const auto* nd = std::get_if<NondetEvent>(&event)) {
    out << "[tid " << nd->tid << "] ~~~ nondet source " << int{nd->source}
        << " via " << kern::syscall_name(nd->nr) << " ~~~";
  }
  return out.str();
}

}  // namespace lzp::replay
