// The record/replay trace format.
//
// A Trace is the complete description of one nondeterministic execution: the
// RNG seed, every interposed syscall (result + out-buffer writes), every
// scheduling decision Machine::run made, every signal delivery point (keyed
// by retired-instruction counts), and an audit stream of nondeterministic
// inputs the kernel consumed. Replaying the trace against the same initial
// program images reproduces the run instruction-for-instruction.
//
// On disk the trace is a compact little-endian binary stream: a versioned
// header followed by per-event frames (1-byte kind + u32 payload length +
// payload), so unknown event kinds can be skipped by older readers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "base/status.hpp"
#include "kernel/signals.hpp"
#include "kernel/task.hpp"

namespace lzp::replay {

inline constexpr std::uint32_t kTraceMagic = 0x4C5A5052;  // "LZPR"
inline constexpr std::uint32_t kTraceVersion = 1;

// One contiguous range of tracee memory the kernel wrote while servicing a
// syscall (rr's "memory record"). Replay re-applies these instead of
// executing the syscall.
struct MemPatch {
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const MemPatch&, const MemPatch&) = default;
};

// An interposed syscall: entry-state fingerprint, result, out-buffer writes.
struct SyscallEvent {
  kern::Tid tid = 0;
  std::uint64_t nr = 0;
  std::array<std::uint64_t, 6> args{};
  std::uint64_t result = 0;
  // Per-task retired simulated instructions at the interposition point.
  std::uint64_t insns_retired = 0;
  // FNV-1a over all GPRs + rip at the interposition point (divergence probe).
  std::uint64_t reg_hash = 0;
  std::vector<MemPatch> patches;

  friend bool operator==(const SyscallEvent&, const SyscallEvent&) = default;
};

// One scheduler decision: `tid` ran for `steps` machine steps.
struct ScheduleEvent {
  kern::Tid tid = 0;
  std::uint64_t steps = 0;

  friend bool operator==(const ScheduleEvent&, const ScheduleEvent&) = default;
};

// One signal delivery, pinned to the exact machine step it happened at.
struct SignalEvent {
  kern::Tid tid = 0;
  std::int32_t signo = 0;
  std::int32_t code = 0;
  std::uint64_t syscall_nr = 0;
  std::array<std::uint64_t, 6> syscall_args{};
  std::uint64_t ip_after_syscall = 0;
  std::uint64_t fault_addr = 0;
  // External signals (Machine::post_signal) do not recur by themselves: the
  // replayer must re-post them at the recorded machine step. Internal ones
  // (SIGSYS, faults, kill) recur naturally and are only verified.
  bool external = false;
  // Per-task retired instructions at delivery (boundary check).
  std::uint64_t insns_retired = 0;
  // Machine-global step count at delivery (replay re-posting coordinate).
  std::uint64_t machine_insns = 0;

  friend bool operator==(const SignalEvent&, const SignalEvent&) = default;
};

// Audit record: the kernel consumed a nondeterministic input while servicing
// `nr` for `tid`. The recorder matches these against captured syscall events
// to flag nondeterminism that leaked past the interposition layer.
struct NondetEvent {
  kern::Tid tid = 0;
  std::uint64_t nr = 0;
  std::uint8_t source = 0;  // kern::Machine::NondetSource

  friend bool operator==(const NondetEvent&, const NondetEvent&) = default;
};

using Event = std::variant<SyscallEvent, ScheduleEvent, SignalEvent, NondetEvent>;

// Frame kind tags (never reorder: they are the on-disk format).
enum class EventKind : std::uint8_t {
  kSyscall = 1,
  kSchedule = 2,
  kSignal = 3,
  kNondet = 4,
};

[[nodiscard]] EventKind event_kind(const Event& event) noexcept;
[[nodiscard]] std::string_view event_kind_name(EventKind kind) noexcept;

struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint64_t rng_seed = 0;
  std::string mechanism;  // interposition mechanism the trace was made with
  std::string workload;   // free-form workload label

  friend bool operator==(const TraceHeader&, const TraceHeader&) = default;
};

class Trace {
 public:
  TraceHeader header;
  std::vector<Event> events;

  [[nodiscard]] std::size_t count(EventKind kind) const noexcept;
  [[nodiscard]] std::size_t syscall_count() const noexcept {
    return count(EventKind::kSyscall);
  }

  // Binary round trip.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<Trace> deserialize(const std::vector<std::uint8_t>& bytes);

  // File round trip.
  Status save(const std::string& path) const;
  static Result<Trace> load(const std::string& path);

  friend bool operator==(const Trace&, const Trace&) = default;
};

// Human-readable one-line rendering (strace style) used by replay_dump.
[[nodiscard]] std::string event_to_string(const Event& event);

}  // namespace lzp::replay
