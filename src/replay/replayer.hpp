// Replay side of the record/replay subsystem.
//
// The Replayer is a SyscallHandler that re-installs over any interposition
// mechanism and substitutes the recorded execution for the kernel's: syscalls
// whose effects are pure data (reads, network payloads, random bytes, time)
// are suppressed and their recorded results + out-buffer writes injected;
// syscalls with kernel-side state replay depends on (mmap, clone, signal
// state, exits) are executed for real and their results verified against the
// trace. The recorded schedule is forced through Machine's schedule hook and
// external signals are re-posted at the exact recorded machine step, so the
// replayed run retires the same instructions in the same order as the
// recording. Any mismatch — task, syscall number, arguments, instruction
// count, register hash, or result — is divergence: the replayer latches a
// structured Status describing the first one and stops consuming the trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interpose/handler.hpp"
#include "kernel/machine.hpp"
#include "replay/trace.hpp"

namespace lzp::replay {

class Replayer final : public interpose::SyscallHandler {
 public:
  explicit Replayer(Trace trace);

  // Wires the schedule hook + signal observer and reseeds the machine RNG
  // from the trace header. Call before loading the workload; install *this
  // as the mechanism's handler; then machine.run() replays the recording.
  void attach(kern::Machine& machine);
  void detach(kern::Machine& machine);

  std::uint64_t handle(interpose::InterposeContext& ctx) override;
  // ptrace entry stop: verify here and suppress injected syscalls (orig_rax
  // = -1); execute-class syscalls fall through to the exit stop for result
  // verification.
  bool pre_execute(interpose::InterposeContext& ctx, std::uint64_t* result) override;
  [[nodiscard]] std::string name() const override { return "replayer"; }

  // Divergence state: ok() until the replayed execution contradicts the
  // trace; afterwards holds a description of the first mismatch.
  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] bool diverged() const noexcept { return !status_.is_ok(); }
  // True when every recorded syscall event has been consumed.
  [[nodiscard]] bool finished() const noexcept {
    return syscall_cursor_ >= syscall_idx_.size();
  }

  struct Stats {
    std::uint64_t syscalls_injected = 0;
    std::uint64_t syscalls_executed = 0;
    std::uint64_t signals_verified = 0;
    std::uint64_t signals_posted = 0;
    std::uint64_t slices_replayed = 0;
    std::uint64_t bytes_patched = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Skip register-hash comparison (needed when replaying under a different
  // mechanism than the recording: interposer-frame registers differ even
  // though the application-visible execution matches).
  void set_verify_registers(bool verify) noexcept { verify_registers_ = verify; }

 private:
  const SyscallEvent* next_syscall_event();
  void diverge(std::string message);
  std::optional<kern::Machine::SchedSlice> next_slice(kern::Machine& machine);
  void on_signal(const kern::Task& task, const kern::SigInfo& info);

  kern::Machine::ObserverId signal_obs_id_ = 0;
  Trace trace_;
  // Per-kind index vectors into trace_.events (the trace stays in recorded
  // global order; cursors advance independently per kind).
  std::vector<std::size_t> syscall_idx_;
  std::vector<std::size_t> sched_idx_;
  std::vector<std::size_t> signal_idx_;    // all signal events (verification)
  std::vector<std::size_t> external_idx_;  // external subset (re-posting)
  std::size_t syscall_cursor_ = 0;
  std::size_t sched_cursor_ = 0;
  std::size_t signal_cursor_ = 0;
  std::size_t external_cursor_ = 0;
  // Steps of the current recorded slice already dispatched (slice splitting
  // around mid-slice external-signal delivery points).
  std::uint64_t slice_consumed_ = 0;

  // ptrace: event verified at entry stop, result check pending at exit stop.
  bool exit_check_pending_ = false;
  std::size_t exit_check_event_ = 0;

  bool verify_registers_ = true;
  Status status_;
  Stats stats_;
};

}  // namespace lzp::replay
