// Record side of the record/replay subsystem.
//
// The Recorder is a SyscallHandler decorator (rr as an interposition client):
// installed under any mechanism, it lets the wrapped handler service each
// syscall, then captures the result plus every byte the kernel wrote into the
// tracee so the Replayer can reproduce the run without a kernel. Machine-level
// nondeterminism — scheduling decisions, signal delivery points, RNG/time/net
// consumption — is captured through the Machine's observer hooks, which
// attach() wires up.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interpose/handler.hpp"
#include "kernel/machine.hpp"
#include "replay/trace.hpp"

namespace lzp::replay {

// FNV-1a over all GPRs + rip: the entry-state fingerprint both sides compute.
[[nodiscard]] std::uint64_t hash_registers(const cpu::CpuContext& ctx) noexcept;

// The out-buffer capture table: which (addr, len) ranges syscall `nr` wrote,
// given its arguments and (non-error) result. Mirrors machine_syscalls.cpp.
[[nodiscard]] std::vector<MemPatch> capture_out_buffers(
    interpose::InterposeContext& ctx, std::uint64_t nr,
    const std::array<std::uint64_t, 6>& args, std::uint64_t result);

// Syscalls replay must genuinely execute because later execution depends on
// their kernel-side effects (memory mappings, task creation, signal state).
// Everything else is injected from the trace.
[[nodiscard]] bool must_execute_on_replay(std::uint64_t nr) noexcept;

class Recorder final : public interpose::SyscallHandler {
 public:
  explicit Recorder(std::shared_ptr<interpose::SyscallHandler> inner =
                        std::make_shared<interpose::DummyHandler>())
      : inner_(std::move(inner)) {}

  // Wires the Machine's observer hooks to this recorder and reseeds the
  // machine RNG so the entropy stream is part of the trace. Call before
  // loading the workload; install *this as the mechanism's handler.
  void attach(kern::Machine& machine, std::uint64_t rng_seed,
              std::string mechanism, std::string workload);
  // Unhooks the observers (the trace stays).
  void detach(kern::Machine& machine);

  std::uint64_t handle(interpose::InterposeContext& ctx) override;
  // ptrace entry stop: capture the pre-execution fingerprint (the exit stop
  // only sees post-kernel state). Never suppresses.
  bool pre_execute(interpose::InterposeContext& ctx, std::uint64_t* result) override;
  [[nodiscard]] std::string name() const override {
    return "recorder(" + inner_->name() + ")";
  }

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  Trace take_trace() { return std::move(trace_); }

  // Nondeterminism audit (record mode assertion hook): true if a
  // nondeterministic input reached the kernel without a matching captured
  // syscall event — i.e. the interposition mechanism missed it.
  [[nodiscard]] bool uncaptured_nondeterminism() const noexcept {
    return !unclaimed_nondet_.empty();
  }
  [[nodiscard]] std::vector<std::string> audit_report() const;

 private:
  struct EntryCapture {
    bool valid = false;
    kern::Tid tid = 0;
    std::uint64_t insns_retired = 0;
    std::uint64_t reg_hash = 0;
  };

  std::shared_ptr<interpose::SyscallHandler> inner_;
  Trace trace_;
  kern::Machine::ObserverId slice_obs_id_ = 0;
  kern::Machine::ObserverId signal_obs_id_ = 0;
  kern::Machine::ObserverId nondet_obs_id_ = 0;
  EntryCapture pending_entry_;  // ptrace: set at entry stop, used at exit stop
  // Nondet notifications not yet claimed by a captured syscall event.
  std::vector<NondetEvent> unclaimed_nondet_;
};

}  // namespace lzp::replay
