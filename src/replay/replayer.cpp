#include "replay/replayer.hpp"

#include <sstream>

#include "kernel/syscalls.hpp"
#include "replay/recorder.hpp"

namespace lzp::replay {
namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

}  // namespace

Replayer::Replayer(Trace trace) : trace_(std::move(trace)) {
  for (std::size_t i = 0; i < trace_.events.size(); ++i) {
    switch (event_kind(trace_.events[i])) {
      case EventKind::kSyscall:
        syscall_idx_.push_back(i);
        break;
      case EventKind::kSchedule:
        sched_idx_.push_back(i);
        break;
      case EventKind::kSignal:
        signal_idx_.push_back(i);
        if (std::get<SignalEvent>(trace_.events[i]).external) {
          external_idx_.push_back(i);
        }
        break;
      case EventKind::kNondet:
        break;  // audit-only; the syscall events carry the injected values
    }
  }
}

void Replayer::attach(kern::Machine& machine) {
  machine.reseed_rng(trace_.header.rng_seed);
  machine.set_schedule_hook(
      [this](kern::Machine& m) { return next_slice(m); });
  signal_obs_id_ = machine.add_signal_observer(
      [this](const kern::Task& task, const kern::SigInfo& info) {
        on_signal(task, info);
      });
}

void Replayer::detach(kern::Machine& machine) {
  machine.set_schedule_hook({});
  machine.remove_signal_observer(signal_obs_id_);
  signal_obs_id_ = 0;
}

void Replayer::diverge(std::string message) {
  if (diverged()) return;  // keep the FIRST mismatch
  status_ = Status{StatusCode::kInternal, "replay divergence: " + std::move(message)};
}

const SyscallEvent* Replayer::next_syscall_event() {
  if (syscall_cursor_ >= syscall_idx_.size()) {
    diverge("trace exhausted: execution performed more syscalls than recorded");
    return nullptr;
  }
  return &std::get<SyscallEvent>(trace_.events[syscall_idx_[syscall_cursor_++]]);
}

std::uint64_t Replayer::handle(interpose::InterposeContext& ctx) {
  const auto& req = ctx.request();
  kern::Task& task = ctx.task();

  // ptrace exit stop of an execute-class syscall verified at the entry stop:
  // only the observed result remains to be checked.
  if (exit_check_pending_ && !diverged()) {
    exit_check_pending_ = false;
    const auto& event =
        std::get<SyscallEvent>(trace_.events[exit_check_event_]);
    const std::uint64_t observed = ctx.pass_through();
    if (observed != event.result) {
      diverge("executed " + std::string(kern::syscall_name(req.nr)) +
              " returned " + hex(observed) + ", trace has " + hex(event.result));
    }
    return observed;
  }
  exit_check_pending_ = false;

  if (diverged()) return kern::errno_result(kern::kENOSYS);

  const SyscallEvent* event = next_syscall_event();
  if (event == nullptr) return kern::errno_result(kern::kENOSYS);

  if (event->tid != task.tid) {
    diverge("syscall from tid " + std::to_string(task.tid) + ", trace has tid " +
            std::to_string(event->tid));
  } else if (event->nr != req.nr) {
    diverge("tid " + std::to_string(task.tid) + " invoked " +
            std::string(kern::syscall_name(req.nr)) + ", trace has " +
            std::string(kern::syscall_name(event->nr)));
  } else if (event->args != req.args) {
    diverge("argument mismatch on " + std::string(kern::syscall_name(req.nr)));
  } else if (event->insns_retired != task.insns_retired) {
    diverge("instruction-count mismatch on " +
            std::string(kern::syscall_name(req.nr)) + ": at " +
            std::to_string(task.insns_retired) + ", trace has " +
            std::to_string(event->insns_retired));
  } else if (verify_registers_ &&
             event->reg_hash != hash_registers(task.ctx)) {
    diverge("register-hash mismatch on " +
            std::string(kern::syscall_name(req.nr)) + " at rip " +
            hex(task.ctx.rip));
  }
  if (diverged()) return kern::errno_result(kern::kENOSYS);

  if (must_execute_on_replay(req.nr)) {
    ++stats_.syscalls_executed;
    const std::uint64_t result = ctx.pass_through();
    if (result != event->result) {
      diverge("executed " + std::string(kern::syscall_name(req.nr)) +
              " returned " + hex(result) + ", trace has " + hex(event->result));
    }
    return result;
  }

  // Inject: the kernel never runs this syscall; reproduce its effects.
  ++stats_.syscalls_injected;
  for (const auto& patch : event->patches) {
    const Status written = ctx.write_bytes(patch.addr, patch.bytes);
    if (!written.is_ok()) {
      diverge("cannot re-apply memory record at " + hex(patch.addr) + ": " +
              written.to_string());
      return kern::errno_result(kern::kENOSYS);
    }
    stats_.bytes_patched += patch.bytes.size();
  }
  return event->result;
}

bool Replayer::pre_execute(interpose::InterposeContext& ctx, std::uint64_t* result) {
  const auto& req = ctx.request();
  // exit/exit_group are reported at the ptrace ENTRY hook, which already ran
  // handle(); consuming another event here would desynchronize the stream.
  if (req.nr == kern::kSysExit || req.nr == kern::kSysExitGroup) return false;
  if (diverged()) return false;  // free-run once diverged

  const std::size_t event_index =
      syscall_cursor_ < syscall_idx_.size() ? syscall_idx_[syscall_cursor_] : 0;
  const SyscallEvent* event = next_syscall_event();
  if (event == nullptr) return false;

  kern::Task& task = ctx.task();
  if (event->tid != task.tid || event->nr != req.nr ||
      event->args != req.args) {
    diverge("entry-stop mismatch: tid " + std::to_string(task.tid) + " " +
            std::string(kern::syscall_name(req.nr)) + ", trace has tid " +
            std::to_string(event->tid) + " " +
            std::string(kern::syscall_name(event->nr)));
    return false;
  }
  if (event->insns_retired != task.insns_retired) {
    diverge("instruction-count mismatch on " +
            std::string(kern::syscall_name(req.nr)) + ": at " +
            std::to_string(task.insns_retired) + ", trace has " +
            std::to_string(event->insns_retired));
    return false;
  }
  if (verify_registers_ && event->reg_hash != hash_registers(task.ctx)) {
    diverge("register-hash mismatch on " +
            std::string(kern::syscall_name(req.nr)) + " at rip " +
            hex(task.ctx.rip));
    return false;
  }

  if (must_execute_on_replay(req.nr)) {
    // Let the kernel run it; the exit stop (handle) verifies the result.
    exit_check_pending_ = true;
    exit_check_event_ = event_index;
    ++stats_.syscalls_executed;
    return false;
  }

  ++stats_.syscalls_injected;
  for (const auto& patch : event->patches) {
    const Status written = ctx.write_bytes(patch.addr, patch.bytes);
    if (!written.is_ok()) {
      diverge("cannot re-apply memory record at " + hex(patch.addr) + ": " +
              written.to_string());
      return false;
    }
    stats_.bytes_patched += patch.bytes.size();
  }
  *result = event->result;
  return true;  // orig_rax = -1: kernel execution suppressed
}

std::optional<kern::Machine::SchedSlice> Replayer::next_slice(
    kern::Machine& machine) {
  if (diverged()) return std::nullopt;

  // Re-post every external signal whose recorded delivery point is due.
  // machine_insns is the machine step count observed inside the recorded
  // delivery, and a signal posted now is delivered at the target task's next
  // step — machine step total_steps() + 1 or later — so a signal recorded at
  // step T is posted once total_steps() has reached T - 1.
  while (external_cursor_ < external_idx_.size()) {
    const auto& sig =
        std::get<SignalEvent>(trace_.events[external_idx_[external_cursor_]]);
    if (sig.machine_insns > machine.total_steps() + 1) break;
    kern::SigInfo info;
    info.signo = sig.signo;
    info.code = sig.code;
    info.syscall_nr = sig.syscall_nr;
    for (std::size_t i = 0; i < 6; ++i) info.syscall_args[i] = sig.syscall_args[i];
    info.ip_after_syscall = sig.ip_after_syscall;
    info.fault_addr = sig.fault_addr;
    const Status posted = machine.post_signal(sig.tid, info);
    if (!posted.is_ok()) {
      diverge("cannot re-post " + std::string(kern::signal_name(sig.signo)) +
              " to tid " + std::to_string(sig.tid) + ": " + posted.to_string());
      return std::nullopt;
    }
    ++external_cursor_;
    ++stats_.signals_posted;
  }

  if (sched_cursor_ >= sched_idx_.size()) return std::nullopt;
  const auto& slice =
      std::get<ScheduleEvent>(trace_.events[sched_idx_[sched_cursor_]]);
  const std::uint64_t remaining = slice.steps - slice_consumed_;

  // Mid-slice external delivery point: split the slice so the posting loop
  // above runs again exactly one step before the recorded delivery.
  if (external_cursor_ < external_idx_.size()) {
    const auto& sig =
        std::get<SignalEvent>(trace_.events[external_idx_[external_cursor_]]);
    const std::uint64_t now = machine.total_steps();
    if (sig.machine_insns > now + 1 && sig.machine_insns <= now + remaining) {
      const std::uint64_t take = sig.machine_insns - 1 - now;
      slice_consumed_ += take;
      return kern::Machine::SchedSlice{slice.tid, take};
    }
  }

  slice_consumed_ = 0;
  ++sched_cursor_;
  ++stats_.slices_replayed;
  return kern::Machine::SchedSlice{slice.tid, remaining};
}

void Replayer::on_signal(const kern::Task& task, const kern::SigInfo& info) {
  if (diverged()) return;
  if (signal_cursor_ >= signal_idx_.size()) {
    diverge("unexpected " + std::string(kern::signal_name(info.signo)) +
            " delivery to tid " + std::to_string(task.tid));
    return;
  }
  const auto& event =
      std::get<SignalEvent>(trace_.events[signal_idx_[signal_cursor_]]);
  if (event.tid != task.tid || event.signo != info.signo) {
    diverge("signal mismatch: " + std::string(kern::signal_name(info.signo)) +
            " to tid " + std::to_string(task.tid) + ", trace has " +
            std::string(kern::signal_name(event.signo)) + " to tid " +
            std::to_string(event.tid));
    return;
  }
  if (event.insns_retired != task.insns_retired) {
    diverge("signal boundary mismatch: " +
            std::string(kern::signal_name(info.signo)) + " delivered at " +
            std::to_string(task.insns_retired) + " insns, trace has " +
            std::to_string(event.insns_retired));
    return;
  }
  ++signal_cursor_;
  ++stats_.signals_verified;
}

}  // namespace lzp::replay
