// Lowering: automaton -> enforceable artifacts.
//
// The seccomp-BPF artifact is one set-membership allowlist *per automaton
// state*, assembled with bpf::SeccompFilterBuilder and validated by
// bpf::validate — real classic-BPF programs a kernel could attach, with
// the monitor tracking which state's filter is active (SFIP's model: the
// kernel cannot track sequence state in one stateless cBPF program, so the
// supervisor swaps filters as the automaton advances). The enforcer
// (policy/enforce.hpp) reaches its verdicts honestly, by *running* these
// programs over a synthesized seccomp_data, never by consulting the
// automaton behind the filter's back.
//
// Two refinements over the naive one-filter-per-state lowering:
//
//   * STATE MERGING (Hopcroft-style): states with equal behavior
//     signatures (Automaton::behavior_signature — one-step equivalence is
//     full equivalence for this last-syscall automaton class) share a
//     single compiled program. CompiledPolicy maps every state to its
//     class; total_filter_insns() counts each shared program once.
//
//   * ARGUMENT PREDICATES: an edge constrained by the value-flow analysis
//     lowers to per-argument 64-bit compares (SeccompData carries full
//     args) guarding that successor's ALLOW; unconstrained members keep
//     the plain membership chain. A state whose predicates would blow the
//     kernel's 4096-instruction cap falls back to the unconstrained form
//     (sound: predicates only ever restrict).
//
// The SUD/lazypoline artifact is the textual allowlist config the
// selector-based runtimes consume: same per-state sets, rendered as the
// automaton serialization plus a syscall-name legend.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "bpf/bpf.hpp"
#include "policy/automaton.hpp"

namespace lzp::policy {

// One behavior class of automaton states, lowered to a shared program.
struct StatePolicy {
  // Representative state (the smallest member id).
  std::uint64_t state = kEntryState;
  // Every automaton state sharing this program, sorted.
  std::vector<std::uint64_t> members;
  // Sorted successor numbers the filter can allow (empty when wildcard).
  std::vector<std::uint32_t> allowed;
  // Subset of `allowed` guarded by argument predicates in the program.
  std::vector<std::uint32_t> predicated;
  // Class degraded to allow-all (wildcard successor / states the automaton
  // never recorded followers for).
  bool wildcard = false;
  // The validated cBPF program: ALLOW for members (with any argument
  // checks), `violation_action` otherwise.
  std::vector<bpf::Insn> filter;
};

struct CompileOptions {
  // Share one program among behavior-equivalent states (semantics
  // preserving; off = one program per state, the unminimized baseline for
  // the before/after filter-size metric).
  bool share_equivalent_states = true;
  // Lower argument predicates into the programs (off = nr-only membership,
  // predicate edges degrade to unconstrained).
  bool arg_predicates = true;
};

struct CompiledPolicy {
  std::uint32_t violation_action = 0;
  // Behavior classes; every state the automaton mentions (plus kEntryState)
  // maps to exactly one class.
  std::vector<StatePolicy> classes;
  std::map<std::uint64_t, std::size_t> state_to_class;
  // Predicated edges that fell back to unconstrained membership because
  // their checks would not fit the program cap.
  std::size_t predicates_dropped = 0;

  // nullptr for states the automaton never mentioned (enforcer treats those
  // as wildcard-allow, matching Automaton::allows).
  [[nodiscard]] const StatePolicy* find(std::uint64_t state) const {
    const auto it = state_to_class.find(state);
    return it == state_to_class.end() ? nullptr : &classes[it->second];
  }
  [[nodiscard]] std::size_t state_count() const { return state_to_class.size(); }
  [[nodiscard]] std::size_t class_count() const { return classes.size(); }
  // Instructions across distinct programs (a shared program counts once —
  // the artifact the monitor must actually hold).
  [[nodiscard]] std::size_t total_filter_insns() const {
    std::size_t n = 0;
    for (const StatePolicy& sp : classes) n += sp.filter.size();
    return n;
  }
};

// Lowers every state of `automaton` (edge sources, plus every syscall that
// appears only as a successor, plus the entry state) to a validated
// allowlist filter returning `violation_action` for off-automaton syscalls.
// Fails with a clear Status if a generated program cannot be encoded
// (beyond the kernel's 4096-instruction cap even after predicate fallback)
// or does not validate.
[[nodiscard]] Result<CompiledPolicy> compile_to_seccomp(
    const Automaton& automaton, std::uint32_t violation_action,
    const CompileOptions& options = {});

// The SUD/lazypoline allowlist config: the automaton text plus a
// human-readable per-state legend with syscall names.
[[nodiscard]] std::string sud_allowlist_config(const Automaton& automaton);

}  // namespace lzp::policy
