// Lowering: automaton -> enforceable artifacts.
//
// The seccomp-BPF artifact is one set-membership allowlist *per automaton
// state*, assembled with bpf::SeccompFilterBuilder::allowlist and validated
// by bpf::validate — real classic-BPF programs a kernel could attach, with
// the monitor tracking which state's filter is active (SFIP's model: the
// kernel cannot track sequence state in one stateless cBPF program, so the
// supervisor swaps filters as the automaton advances). The enforcer
// (policy/enforce.hpp) reaches its verdicts honestly, by *running* these
// programs over a synthesized seccomp_data, never by consulting the
// automaton behind the filter's back.
//
// The SUD/lazypoline artifact is the textual allowlist config the
// selector-based runtimes consume: same per-state sets, rendered as the
// automaton serialization plus a syscall-name legend.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "bpf/bpf.hpp"
#include "policy/automaton.hpp"

namespace lzp::policy {

// One automaton state, lowered.
struct StatePolicy {
  std::uint64_t state = kEntryState;
  // Sorted successor numbers the filter allows (empty when wildcard).
  std::vector<std::uint32_t> allowed;
  // State degraded to allow-all (wildcard successor / state the automaton
  // never recorded followers for).
  bool wildcard = false;
  // The validated cBPF program: ALLOW for members, `violation_action` else.
  std::vector<bpf::Insn> filter;
};

struct CompiledPolicy {
  std::uint32_t violation_action = 0;
  // Keyed by automaton state; kEntryState is always present.
  std::map<std::uint64_t, StatePolicy> states;

  // nullptr for states the automaton never mentioned (enforcer treats those
  // as wildcard-allow, matching Automaton::allows).
  [[nodiscard]] const StatePolicy* find(std::uint64_t state) const {
    const auto it = states.find(state);
    return it == states.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t total_filter_insns() const {
    std::size_t n = 0;
    for (const auto& [state, sp] : states) n += sp.filter.size();
    return n;
  }
};

// Lowers every state of `automaton` (edge sources, plus every syscall that
// appears only as a successor, plus the entry state) to a validated
// allowlist filter returning `violation_action` for off-automaton syscalls.
// Fails with a clear Status if any per-state set exceeds what a linear cBPF
// membership chain can encode (SeccompFilterBuilder's 255-offset limit) or
// if a generated program does not validate.
[[nodiscard]] Result<CompiledPolicy> compile_to_seccomp(
    const Automaton& automaton, std::uint32_t violation_action);

// The SUD/lazypoline allowlist config: the automaton text plus a
// human-readable per-state legend with syscall names.
[[nodiscard]] std::string sud_allowlist_config(const Automaton& automaton);

}  // namespace lzp::policy
