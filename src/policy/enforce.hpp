// Enforcement: the PolicyEnforcer SyscallHandler decorator.
//
// Same composition pattern as replay::Recorder — wrap any inner handler and
// install the enforcer as the mechanism's handler — so one policy runs
// unchanged under all four mechanisms (ptrace, SUD, zpoline, lazypoline).
// Each decision is made by *running* the compiled per-state seccomp-BPF
// filter (bpf::run over a synthesized seccomp_data), so what is enforced is
// exactly what the lowered artifact encodes.
//
// Mechanism-ordering detail (ptrace): ptrace stops the tracee BEFORE the
// kernel executes the syscall, so the check runs in pre_execute — a denial
// suppresses execution entirely (the orig_rax = -1 injection pattern) rather
// than failing the syscall after the fact. The exit-stop handle() call then
// skips the already-checked syscall and only delegates to the inner handler.
// exit/exit_group are the exception: the ptrace tool runs handle() for them
// at the entry stop (there is no exit stop), so pre_execute ignores them.
//
// SMP: the enforcer's mutex is a leaf lock — taken around state/counter
// updates only, never while calling the machine, the inner handler, or the
// trace sink (DESIGN.md §11 lock ordering).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "interpose/handler.hpp"
#include "kernel/syscalls.hpp"
#include "policy/compile.hpp"

namespace lzp::policy {

// What to do with an off-automaton syscall.
enum class Verdict : std::uint8_t {
  kLogOnly,    // count + probe, then execute normally
  kDenyErrno,  // refuse with an errno; the task keeps running
  kKill,       // kill the offending process (seccomp RET_KILL semantics)
};

[[nodiscard]] constexpr std::string_view to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kLogOnly: return "log-only";
    case Verdict::kDenyErrno: return "deny-errno";
    case Verdict::kKill: return "kill";
  }
  return "?";
}

struct EnforcerOptions {
  Verdict verdict = Verdict::kDenyErrno;
  std::int64_t deny_errno = kern::kEPERM;
  // Unconditionally permitted, whatever the automaton says: a deny-mode
  // policy must never wedge a task that is trying to exit.
  std::set<std::uint64_t> always_allow = {kern::kSysExit, kern::kSysExitGroup};
  // Lowering knobs (state merging on, predicate edges on by default; both
  // are semantics-preserving, so decisions are identical either way).
  CompileOptions compile;
};

struct EnforcerStats {
  std::uint64_t transitions_checked = 0;
  std::uint64_t violations = 0;
  std::uint64_t denied = 0;
  std::uint64_t killed = 0;
  std::uint64_t logged = 0;
  std::uint64_t wildcard_allows = 0;
  std::uint64_t always_allows = 0;
  std::uint64_t bpf_insns_executed = 0;
  std::map<std::uint64_t, std::uint64_t> state_checks;      // per-state hits
  std::map<std::uint64_t, std::uint64_t> state_violations;
};

class PolicyEnforcer final : public interpose::SyscallHandler {
 public:
  // Compiles `automaton` (deny verdicts lower to SECCOMP_RET_ERRNO, kill to
  // SECCOMP_RET_KILL_PROCESS, log-only to SECCOMP_RET_LOG) and wraps
  // `inner`. Fails if the automaton cannot be lowered (oversized per-state
  // set, bpf validation).
  static Result<std::shared_ptr<PolicyEnforcer>> create(
      const Automaton& automaton, EnforcerOptions options,
      std::shared_ptr<interpose::SyscallHandler> inner =
          std::make_shared<interpose::DummyHandler>());

  std::uint64_t handle(interpose::InterposeContext& ctx) override;
  bool pre_execute(interpose::InterposeContext& ctx,
                   std::uint64_t* result) override;
  [[nodiscard]] std::string name() const override {
    return "policy(" + inner_->name() + ")";
  }

  [[nodiscard]] EnforcerStats stats() const;
  [[nodiscard]] const CompiledPolicy& compiled() const noexcept {
    return compiled_;
  }
  [[nodiscard]] const Automaton& automaton() const noexcept {
    return automaton_;
  }
  // Drops all per-task automaton state (fresh run on a reused enforcer).
  void reset();

 private:
  PolicyEnforcer(Automaton automaton, CompiledPolicy compiled,
                 EnforcerOptions options,
                 std::shared_ptr<interpose::SyscallHandler> inner)
      : automaton_(std::move(automaton)),
        compiled_(std::move(compiled)),
        options_(options),
        inner_(std::move(inner)) {}

  struct Decision {
    kern::PolicyDecision kind = kern::PolicyDecision::kAllow;
    std::uint64_t from_state = kEntryState;
    [[nodiscard]] bool violation() const noexcept {
      return kind == kern::PolicyDecision::kViolationLogged ||
             kind == kern::PolicyDecision::kViolationDenied ||
             kind == kern::PolicyDecision::kViolationKilled;
    }
  };

  // Checks `nr` against the task's current state, updates state + counters
  // under the mutex, and returns the decision. Probe emission happens in the
  // caller, outside the lock.
  Decision decide(kern::Tid tid, std::uint64_t nr, std::uint64_t site,
                  const std::array<std::uint64_t, 6>& args);
  void emit_probe(interpose::InterposeContext& ctx, std::uint64_t nr,
                  const Decision& decision);
  std::uint64_t apply_verdict(interpose::InterposeContext& ctx,
                              const Decision& decision);

  Automaton automaton_;
  CompiledPolicy compiled_;
  EnforcerOptions options_;
  std::shared_ptr<interpose::SyscallHandler> inner_;

  mutable std::mutex mu_;
  std::map<kern::Tid, std::uint64_t> task_state_;
  // ptrace coordination: nr checked at the entry stop, to be skipped by the
  // exit-stop handle() call. Keyed per tid (several tracees may be between
  // stops at once).
  std::map<kern::Tid, std::uint64_t> pre_checked_;
  EnforcerStats stats_;
};

}  // namespace lzp::policy
