// The syscall-transition automaton: the portable policy artifact of the
// syscall-flow-integrity pipeline (SFIP-style coarse-grained sequence
// enforcement).
//
// States are syscall numbers plus one synthetic entry state; an edge
// (from -> to) means "after observing syscall `from`, syscall `to` is
// permitted next". Two escape hatches keep static extraction sound without
// giving up the whole policy:
//
//   * kAnySyscall as a *successor* marks a state whose follower set is
//     statically unknowable (a computed transfer between the two sites):
//     that one state degrades to allow-all, the rest stay exact.
//
//   * from_any holds syscalls permitted from *every* state: the successors
//     of a syscall site whose own number could not be resolved statically
//     (the monitor cannot know which state that site put the task in).
//
// The text serialization is the interchange format between the extractor
// CLI and the enforcer, and doubles as the SUD/lazypoline allowlist config.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "base/status.hpp"
#include "kernel/trace_sink.hpp"

namespace lzp::policy {

// Mirrors the kernel probe layer's sentinels (kernel/trace_sink.hpp) so a
// state id can flow into on_policy_decision unchanged.
inline constexpr std::uint64_t kEntryState = kern::kPolicyEntryState;
inline constexpr std::uint64_t kAnySyscall = kern::kPolicyAnySyscall;

class Automaton {
 public:
  std::string name;    // workload label
  std::string source;  // "static" | "dynamic" | "merged" | free-form

  void add_edge(std::uint64_t from, std::uint64_t to) { edges_[from].insert(to); }
  void add_from_any(std::uint64_t to) { from_any_.insert(to); }

  // Enforcement semantics, exactly as the enforcer applies them: `nr` is
  // permitted in `state` if it is globally allowed, if the state's follower
  // set contains it or the wildcard — or if the automaton has never seen the
  // state at all (a state only reachable through from_any/wildcard edges has
  // no recorded followers; refusing everything there would turn a sound
  // over-approximation into false violations, so unknown states allow-all).
  [[nodiscard]] bool allows(std::uint64_t state, std::uint64_t nr) const {
    if (from_any_.count(nr) != 0 || from_any_.count(kAnySyscall) != 0) {
      return true;
    }
    const auto it = edges_.find(state);
    if (it == edges_.end()) return true;
    return it->second.count(kAnySyscall) != 0 || it->second.count(nr) != 0;
  }

  [[nodiscard]] const std::map<std::uint64_t, std::set<std::uint64_t>>& edges()
      const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::set<std::uint64_t>& from_any() const noexcept {
    return from_any_;
  }

  // Number of distinct (state -> successor) pairs, counting each from_any
  // member once (it is one rule, however many states it spans).
  [[nodiscard]] std::size_t edge_count() const {
    std::size_t n = from_any_.size();
    for (const auto& [from, tos] : edges_) n += tos.size();
    return n;
  }
  [[nodiscard]] std::size_t state_count() const { return edges_.size(); }
  [[nodiscard]] bool has_wildcard() const {
    for (const auto& [from, tos] : edges_) {
      if (tos.count(kAnySyscall) != 0) return true;
    }
    return false;
  }

  // Every concrete syscall number the automaton mentions (states and
  // successors; sentinels excluded).
  [[nodiscard]] std::set<std::uint64_t> syscalls() const;

  // True if every transition `other` permits is also permitted here — the
  // static ⊇ dynamic containment check. Concrete edges and from_any members
  // of `other` must be allowed by *this* under allows(); a wildcard
  // successor in `other` requires the matching state here to be wildcard
  // (or unknown) too.
  [[nodiscard]] bool contains(const Automaton& other) const;

  // Union of transitions; wildcard and from_any are merged as-is.
  void merge(const Automaton& other);

  // Deterministic text round trip: serialize() output parses back to an
  // automaton that compares equal (tests/policy_test.cpp pins this).
  [[nodiscard]] std::string serialize() const;
  static Result<Automaton> parse(const std::string& text);

  friend bool operator==(const Automaton&, const Automaton&) = default;

 private:
  std::map<std::uint64_t, std::set<std::uint64_t>> edges_;
  std::set<std::uint64_t> from_any_;
};

}  // namespace lzp::policy
