// The syscall-transition automaton: the portable policy artifact of the
// syscall-flow-integrity pipeline (SFIP-style coarse-grained sequence
// enforcement).
//
// States are syscall numbers plus one synthetic entry state; an edge
// (from -> to) means "after observing syscall `from`, syscall `to` is
// permitted next". Two escape hatches keep static extraction sound without
// giving up the whole policy:
//
//   * kAnySyscall as a *successor* marks a state whose follower set is
//     statically unknowable (a computed transfer between the two sites):
//     that one state degrades to allow-all, the rest stay exact.
//
//   * from_any holds syscalls permitted from *every* state: the successors
//     of a syscall site whose own number could not be resolved statically
//     (the monitor cannot know which state that site put the task in).
//
// Edges may additionally carry ARGUMENT PREDICATES: a disjunction of
// clauses, each a conjunction of small-set constraints on the first four
// syscall argument registers (rdi rsi rdx r10), produced by the value-flow
// analysis (analysis/dataflow.hpp). An edge without a predicate is
// unconstrained; predicates only ever *restrict* an edge, so nr-granularity
// reasoning (contains(), edge_count()) stays sound and argument-level
// precision is validated dynamically by the enforcement gates.
//
// The text serialization is the interchange format between the extractor
// CLI and the enforcer, and doubles as the SUD/lazypoline allowlist config.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/status.hpp"
#include "kernel/trace_sink.hpp"

namespace lzp::policy {

// Mirrors the kernel probe layer's sentinels (kernel/trace_sink.hpp) so a
// state id can flow into on_policy_decision unchanged.
inline constexpr std::uint64_t kEntryState = kern::kPolicyEntryState;
inline constexpr std::uint64_t kAnySyscall = kern::kPolicyAnySyscall;

// Number of argument registers predicates may constrain (rdi rsi rdx r10,
// indices 0..3 — matching SeccompData's args array).
inline constexpr std::size_t kNumPredArgs = 4;

// "arg ∈ values" — one conjunct of a predicate clause.
struct ArgConstraint {
  std::uint8_t arg = 0;             // 0..kNumPredArgs-1
  std::set<std::uint64_t> values;   // non-empty
  friend auto operator<=>(const ArgConstraint&, const ArgConstraint&) = default;
};

// Conjunction of constraints, normalized: sorted by arg, one entry per arg.
using PredClause = std::vector<ArgConstraint>;

class Automaton {
 public:
  std::string name;    // workload label
  std::string source;  // "static" | "dynamic" | "merged" | free-form

  // Unconstrained edge; widens away any predicate previously on (from, to).
  void add_edge(std::uint64_t from, std::uint64_t to) {
    edges_[from].insert(to);
    predicates_.erase({from, to});
  }
  // Predicated edge: permitted when the clause holds (disjunction with any
  // clauses already present). If the edge already exists unconstrained, it
  // stays unconstrained; an empty/degenerate clause means unconstrained.
  void add_edge(std::uint64_t from, std::uint64_t to, const PredClause& clause);
  void add_from_any(std::uint64_t to) { from_any_.insert(to); }
  // Materialize `from` as an explicit state, possibly with no successors
  // (an explicit empty state denies everything beyond from_any, unlike an
  // unknown state which allows all).
  void add_state(std::uint64_t from) { edges_[from]; }

  // Enforcement semantics at nr granularity, exactly as the enforcer applies
  // them: `nr` is permitted in `state` if it is globally allowed, if the
  // state's follower set contains it or the wildcard — or if the automaton
  // has never seen the state at all (a state only reachable through
  // from_any/wildcard edges has no recorded followers; refusing everything
  // there would turn a sound over-approximation into false violations, so
  // unknown states allow-all). Predicates are ignored: an edge counts as
  // present whether or not it is constrained.
  [[nodiscard]] bool allows(std::uint64_t state, std::uint64_t nr) const {
    if (from_any_.count(nr) != 0 || from_any_.count(kAnySyscall) != 0) {
      return true;
    }
    const auto it = edges_.find(state);
    if (it == edges_.end()) return true;
    return it->second.count(kAnySyscall) != 0 || it->second.count(nr) != 0;
  }

  // Argument-aware variant: like allows(state, nr) but a predicated edge
  // additionally requires some clause to hold on `args` (the first
  // kNumPredArgs syscall arguments). Unconstrained paths (from_any, unknown
  // state, wildcard) never consult args.
  [[nodiscard]] bool allows(std::uint64_t state, std::uint64_t nr,
                            const std::uint64_t* args) const;

  [[nodiscard]] const std::map<std::uint64_t, std::set<std::uint64_t>>& edges()
      const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::set<std::uint64_t>& from_any() const noexcept {
    return from_any_;
  }
  // nullptr = unconstrained; otherwise the clause disjunction on the edge.
  [[nodiscard]] const std::vector<PredClause>* predicate(
      std::uint64_t from, std::uint64_t to) const {
    const auto it = predicates_.find({from, to});
    return it == predicates_.end() ? nullptr : &it->second;
  }

  // Number of distinct (state -> successor) pairs, counting each from_any
  // member once (it is one rule, however many states it spans).
  [[nodiscard]] std::size_t edge_count() const {
    std::size_t n = from_any_.size();
    for (const auto& [from, tos] : edges_) n += tos.size();
    return n;
  }
  [[nodiscard]] std::size_t state_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t predicated_edge_count() const {
    return predicates_.size();
  }
  [[nodiscard]] bool has_wildcard() const {
    for (const auto& [from, tos] : edges_) {
      if (tos.count(kAnySyscall) != 0) return true;
    }
    return false;
  }

  // Every concrete syscall number the automaton mentions (states and
  // successors; sentinels excluded).
  [[nodiscard]] std::set<std::uint64_t> syscalls() const;

  // True if every transition `other` permits is also permitted here — the
  // static ⊇ dynamic containment check. Concrete edges and from_any members
  // of `other` must be allowed by *this* under allows(); a wildcard
  // successor in `other` requires the matching state here to be wildcard
  // (or unknown) too. Deliberately nr-granular (predicate-blind): a
  // dynamically learned automaton records no arguments, so argument
  // predicates are validated by running the workload violation-free under
  // the predicated policy, not by containment.
  [[nodiscard]] bool contains(const Automaton& other) const;

  // Union of transitions; wildcard and from_any are merged as-is. An edge
  // unconstrained on either side is unconstrained in the union; two
  // predicated edges keep both clause sets (disjunction).
  void merge(const Automaton& other);

  // Canonical description of this state's effective allow behavior under
  // allows(state, nr, args): "*" for allow-all states, otherwise the sorted
  // list of allowed nrs with their effective predicates (from_any members
  // are always unconstrained). Two states with equal signatures accept the
  // same language — and because the successor state of an accepted symbol
  // is the symbol itself regardless of the source state, one-step
  // equivalence IS full equivalence: the Hopcroft-style partition
  // refinement over these signatures converges in a single round. Used by
  // compile_to_seccomp to share one cBPF program across equivalent states.
  [[nodiscard]] std::string behavior_signature(std::uint64_t state) const;

  // Deterministic text round trip: serialize() output parses back to an
  // automaton that compares equal (tests/policy_test.cpp pins this).
  [[nodiscard]] std::string serialize() const;
  static Result<Automaton> parse(const std::string& text);

  friend bool operator==(const Automaton&, const Automaton&) = default;

 private:
  std::map<std::uint64_t, std::set<std::uint64_t>> edges_;
  std::set<std::uint64_t> from_any_;
  // Keyed by (from, to); invariant: the edge exists in edges_, the clause
  // list is non-empty, normalized and sorted. Absence = unconstrained.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<PredClause>>
      predicates_;
};

// Language-preserving simplification: drops allow-all states (a state with
// a wildcard successor behaves exactly like an unknown state) and per-state
// successors already covered by from_any (which is unconstrained, so it
// subsumes any predicate on the same nr). The result accepts exactly the
// same set of traces — tests pin `contains` in both directions — while
// shrinking the serialized form and the compiled filter set.
struct MinimizeResult {
  Automaton automaton;
  std::size_t states_before = 0;  // explicit states in the input
  std::size_t states_after = 0;   // explicit states kept
  std::size_t classes = 0;        // distinct behavior classes among kept
  std::size_t edges_dropped = 0;  // redundant (state -> nr) pairs removed
};
[[nodiscard]] MinimizeResult minimize(const Automaton& automaton);

}  // namespace lzp::policy
