#include "policy/compile.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "bpf/seccomp_filter.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

std::string state_label(std::uint64_t state) {
  if (state == kEntryState) return "entry";
  return std::string(kern::syscall_name(state)) + "(" + std::to_string(state) +
         ")";
}

// What one behavior class must allow.
struct ClassSpec {
  bool wildcard = false;
  std::set<std::uint64_t> plain;  // unconstrained members
  // Predicated members: nr -> clause disjunction (non-null).
  std::map<std::uint64_t, const std::vector<PredClause>*> pred;
};

// cBPF emitter with forward-label fixups for the unconditional BPF_JA hops
// (conditional jumps only ever use small fixed offsets here).
class FilterEmitter {
 public:
  void stmt(std::uint16_t code, std::uint32_t k) {
    program_.push_back(bpf::stmt(code, k));
  }
  void jump(std::uint16_t code, std::uint32_t k, std::uint8_t jt,
            std::uint8_t jf) {
    program_.push_back(bpf::jump(code, k, jt, jf));
  }
  // Unconditional jump to a label bound later.
  void ja(int label) {
    fixups_.emplace_back(program_.size(), label);
    program_.push_back(bpf::jump(bpf::BPF_JMP | bpf::BPF_JA, 0, 0, 0));
  }
  int new_label() { return next_label_++; }
  void bind(int label) { bound_[label] = program_.size(); }
  [[nodiscard]] std::size_t size() const { return program_.size(); }

  std::vector<bpf::Insn> finish() {
    for (const auto& [index, label] : fixups_) {
      // All jumps are forward; bind() ran after the ja() that targets it.
      program_[index].k =
          static_cast<std::uint32_t>(bound_.at(label) - index - 1);
    }
    return std::move(program_);
  }

 private:
  std::vector<bpf::Insn> program_;
  std::vector<std::pair<std::size_t, int>> fixups_;
  std::map<int, std::size_t> bound_;
  int next_label_ = 0;
};

// Membership chain for the unconstrained members, segmented like
// SeccompFilterBuilder::allowlist but inlined so a non-match falls through
// to the predicate segments instead of a final return.
void emit_plain_members(FilterEmitter& em, const std::set<std::uint64_t>& plain) {
  std::vector<std::uint32_t> members;
  members.reserve(plain.size());
  for (const std::uint64_t nr : plain) {
    members.push_back(static_cast<std::uint32_t>(nr));
  }
  constexpr std::size_t kChunk = bpf::SeccompFilterBuilder::kAllowlistChunk;
  for (std::size_t base = 0; base < members.size(); base += kChunk) {
    const std::size_t k = std::min(kChunk, members.size() - base);
    for (std::size_t i = 0; i < k; ++i) {
      em.jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K, members[base + i],
              static_cast<std::uint8_t>(k - i), 0);
    }
    em.jump(bpf::BPF_JMP | bpf::BPF_JA, 1, 0, 0);  // skip the segment ALLOW
    em.stmt(bpf::BPF_RET | bpf::BPF_K, bpf::SECCOMP_RET_ALLOW);
  }
}

// One predicated successor: if nr matches, some clause must hold on the
// argument words or the verdict is the violation action.
void emit_pred_segment(FilterEmitter& em, std::uint64_t to,
                       const std::vector<PredClause>& clauses, int violation) {
  const int next_segment = em.new_label();
  // nr match: hop over the ja into the clause code; mismatch: next segment.
  em.jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K,
          static_cast<std::uint32_t>(to), 1, 0);
  em.ja(next_segment);
  for (std::size_t c = 0; c < clauses.size(); ++c) {
    const int clause_fail = c + 1 < clauses.size() ? em.new_label() : violation;
    for (const ArgConstraint& constraint : clauses[c]) {
      const int constraint_ok = em.new_label();
      const std::uint32_t off_low =
          bpf::SeccompData::off_arg_low(constraint.arg);
      const std::uint32_t off_high =
          bpf::SeccompData::off_arg_high(constraint.arg);
      for (const std::uint64_t value : constraint.values) {
        // 64-bit equality in the 32-bit cBPF machine: low word, then high
        // word; any mismatch short-jumps to the next candidate value.
        em.stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS, off_low);
        em.jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K,
                static_cast<std::uint32_t>(value), 0, 3);
        em.stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS, off_high);
        em.jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K,
                static_cast<std::uint32_t>(value >> 32), 0, 1);
        em.ja(constraint_ok);
      }
      em.ja(clause_fail);  // no value matched: conjunction failed
      em.bind(constraint_ok);
    }
    em.stmt(bpf::BPF_RET | bpf::BPF_K, bpf::SECCOMP_RET_ALLOW);
    if (c + 1 < clauses.size()) em.bind(clause_fail);
  }
  em.bind(next_segment);
}

std::vector<bpf::Insn> build_class_filter(const ClassSpec& spec,
                                          std::uint32_t violation_action) {
  FilterEmitter em;
  const int violation = em.new_label();
  em.stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS, bpf::SeccompData::kOffNr);
  emit_plain_members(em, spec.plain);
  for (const auto& [to, clauses] : spec.pred) {
    emit_pred_segment(em, to, *clauses, violation);
  }
  em.bind(violation);
  em.stmt(bpf::BPF_RET | bpf::BPF_K, violation_action);
  return em.finish();
}

}  // namespace

Result<CompiledPolicy> compile_to_seccomp(const Automaton& automaton,
                                          std::uint32_t violation_action,
                                          const CompileOptions& options) {
  CompiledPolicy out;
  out.violation_action = violation_action;

  // Every state the monitor can be in: the entry state, every edge source,
  // and every concrete syscall the automaton mentions (a successor-only
  // syscall is still a state the task will reach).
  std::set<std::uint64_t> states = automaton.syscalls();
  states.insert(kEntryState);
  for (const auto& [from, tos] : automaton.edges()) states.insert(from);

  // Group behavior-equivalent states (one-step equivalence is full
  // equivalence for this automaton class; see behavior_signature). With
  // sharing off every state is its own class — the unminimized baseline.
  std::map<std::string, std::vector<std::uint64_t>> groups;
  for (const std::uint64_t state : states) {
    std::string key = options.share_equivalent_states
                          ? automaton.behavior_signature(state)
                          : "#" + std::to_string(state);
    groups[key].push_back(state);
  }
  std::vector<std::vector<std::uint64_t>*> ordered;
  ordered.reserve(groups.size());
  for (auto& [key, members] : groups) {
    std::sort(members.begin(), members.end());
    ordered.push_back(&members);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->front() < b->front(); });

  for (const auto* members : ordered) {
    const std::uint64_t state = members->front();  // representative
    StatePolicy sp;
    sp.state = state;
    sp.members = *members;

    const auto it = automaton.edges().find(state);
    const bool unknown_state = it == automaton.edges().end();
    const bool wildcard_successor =
        !unknown_state && it->second.count(kAnySyscall) != 0;
    sp.wildcard = unknown_state || wildcard_successor ||
                  automaton.from_any().count(kAnySyscall) != 0;

    if (sp.wildcard) {
      sp.filter =
          bpf::SeccompFilterBuilder::return_constant(bpf::SECCOMP_RET_ALLOW);
    } else {
      ClassSpec spec;
      spec.plain = automaton.from_any();
      for (const std::uint64_t to : it->second) {
        const std::vector<PredClause>* pred = automaton.predicate(state, to);
        if (options.arg_predicates && pred != nullptr &&
            spec.plain.count(to) == 0) {
          spec.pred[to] = pred;
        } else {
          if (pred != nullptr) ++out.predicates_dropped;
          spec.plain.insert(to);
        }
      }
      std::vector<bpf::Insn> program = build_class_filter(spec, violation_action);
      if (program.size() > bpf::kMaxProgramLength && !spec.pred.empty()) {
        // Predicates only restrict: dropping them back to plain membership
        // is sound and usually brings the program under the cap.
        out.predicates_dropped += spec.pred.size();
        for (const auto& [to, clauses] : spec.pred) spec.plain.insert(to);
        spec.pred.clear();
        program = build_class_filter(spec, violation_action);
      }
      if (program.size() > bpf::kMaxProgramLength) {
        return make_error(StatusCode::kOutOfRange,
                          "state " + state_label(state) + ": " +
                              std::to_string(program.size()) +
                              " instructions exceed the BPF_MAXINSNS cap of " +
                              std::to_string(bpf::kMaxProgramLength));
      }
      sp.allowed.reserve(spec.plain.size() + spec.pred.size());
      for (const std::uint64_t nr : spec.plain) {
        sp.allowed.push_back(static_cast<std::uint32_t>(nr));
      }
      for (const auto& [to, clauses] : spec.pred) {
        sp.allowed.push_back(static_cast<std::uint32_t>(to));
        sp.predicated.push_back(static_cast<std::uint32_t>(to));
      }
      std::sort(sp.allowed.begin(), sp.allowed.end());
      sp.filter = std::move(program);
    }

    const Status valid = bpf::validate(sp.filter, bpf::SeccompData::kSize);
    if (!valid.is_ok()) {
      return make_error(StatusCode::kInternal,
                        "state " + state_label(state) +
                            ": generated filter failed validation: " +
                            valid.to_string());
    }
    const std::size_t class_index = out.classes.size();
    for (const std::uint64_t member : sp.members) {
      out.state_to_class.emplace(member, class_index);
    }
    out.classes.push_back(std::move(sp));
  }
  return out;
}

std::string sud_allowlist_config(const Automaton& automaton) {
  std::ostringstream out;
  out << "# SUD / lazypoline per-state syscall allowlist\n";
  out << "# (selector-based runtimes track the state in the monitor and\n";
  out << "#  consult the active state's set on every SIGSYS / fast-path\n";
  out << "#  entry; '*' means the state is allow-all)\n";
  out << automaton.serialize();
  out << "# legend:\n";
  for (const std::uint64_t nr : automaton.syscalls()) {
    out << "#   " << nr << " = " << kern::syscall_name(nr) << "\n";
  }
  return out.str();
}

}  // namespace lzp::policy
