#include "policy/compile.hpp"

#include <algorithm>
#include <sstream>

#include "bpf/seccomp_filter.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

std::string state_label(std::uint64_t state) {
  if (state == kEntryState) return "entry";
  return std::string(kern::syscall_name(state)) + "(" + std::to_string(state) +
         ")";
}

}  // namespace

Result<CompiledPolicy> compile_to_seccomp(const Automaton& automaton,
                                          std::uint32_t violation_action) {
  CompiledPolicy out;
  out.violation_action = violation_action;

  // Every state the monitor can be in: the entry state, every edge source,
  // and every concrete syscall the automaton mentions (a successor-only
  // syscall is still a state the task will reach).
  std::set<std::uint64_t> states = automaton.syscalls();
  states.insert(kEntryState);
  for (const auto& [from, tos] : automaton.edges()) states.insert(from);

  for (const std::uint64_t state : states) {
    StatePolicy sp;
    sp.state = state;

    const auto it = automaton.edges().find(state);
    const bool unknown_state = it == automaton.edges().end();
    const bool wildcard_successor =
        !unknown_state && it->second.count(kAnySyscall) != 0;
    sp.wildcard = unknown_state || wildcard_successor ||
                  automaton.from_any().count(kAnySyscall) != 0;

    if (sp.wildcard) {
      sp.filter =
          bpf::SeccompFilterBuilder::return_constant(bpf::SECCOMP_RET_ALLOW);
    } else {
      std::set<std::uint64_t> members = automaton.from_any();
      members.insert(it->second.begin(), it->second.end());
      sp.allowed.reserve(members.size());
      for (const std::uint64_t nr : members) {
        sp.allowed.push_back(static_cast<std::uint32_t>(nr));
      }
      auto program =
          bpf::SeccompFilterBuilder::allowlist(sp.allowed, violation_action);
      if (!program.is_ok()) {
        return make_error(program.status().code(),
                          "state " + state_label(state) + ": " +
                              program.status().message());
      }
      sp.filter = std::move(program).value();
    }

    const Status valid =
        bpf::validate(sp.filter, bpf::SeccompData::kSize);
    if (!valid.is_ok()) {
      return make_error(StatusCode::kInternal,
                        "state " + state_label(state) +
                            ": generated filter failed validation: " +
                            valid.to_string());
    }
    out.states.emplace(state, std::move(sp));
  }
  return out;
}

std::string sud_allowlist_config(const Automaton& automaton) {
  std::ostringstream out;
  out << "# SUD / lazypoline per-state syscall allowlist\n";
  out << "# (selector-based runtimes track the state in the monitor and\n";
  out << "#  consult the active state's set on every SIGSYS / fast-path\n";
  out << "#  entry; '*' means the state is allow-all)\n";
  out << automaton.serialize();
  out << "# legend:\n";
  for (const std::uint64_t nr : automaton.syscalls()) {
    out << "#   " << nr << " = " << kern::syscall_name(nr) << "\n";
  }
  return out.str();
}

}  // namespace lzp::policy
