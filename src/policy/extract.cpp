#include "policy/extract.hpp"

#include <map>
#include <set>

#include "analysis/cfg.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

// Does `insn` write rax? reg_effects covers the data-flow writers (including
// the SYSCALL return-value clobber); HOSTCALL transfers to native code whose
// register effects are unknowable, so it is treated as a clobber.
bool writes_rax(const isa::Instruction& insn) {
  if (insn.op == isa::Op::kHostCall) return true;
  const isa::RegEffects fx = isa::reg_effects(insn);
  for (std::uint8_t i = 0; i < fx.num_writes; ++i) {
    if (fx.writes[i].cls == isa::RegClass::kGpr && fx.writes[i].index == 0) {
      return true;
    }
  }
  return false;
}

// One reachable SYSCALL/SYSENTER site: its resolved number, or kAnySyscall.
struct Site {
  std::uint64_t addr = 0;
  std::uint64_t nr = kAnySyscall;
};

// Block-local backward scan from the site to the last rax writer.
std::uint64_t resolve_site_nr(const analysis::Cfg& cfg,
                              const analysis::BasicBlock& block,
                              std::size_t site_index) {
  for (std::size_t i = site_index; i-- > 0;) {
    const isa::Instruction& insn = cfg.reachable.at(block.insns[i]).insn;
    if (!writes_rax(insn)) continue;
    if (insn.op == isa::Op::kMovRI && insn.r1 == isa::Gpr::rax &&
        insn.imm >= 0 &&
        static_cast<std::uint64_t>(insn.imm) <= kern::kMaxSyscallNumber) {
      return static_cast<std::uint64_t>(insn.imm);
    }
    return kAnySyscall;  // some other writer: value unknown statically
  }
  return kAnySyscall;  // no writer in this block: set by a predecessor
}

}  // namespace

StaticExtraction extract_static(std::span<const std::uint8_t> bytes,
                                std::uint64_t base, std::uint64_t entry,
                                std::string workload_name) {
  StaticExtraction out;
  out.automaton.name = std::move(workload_name);
  out.automaton.source = "static";

  const analysis::Cfg cfg = analysis::build_cfg(bytes, base, entry);
  out.blocks = cfg.blocks.size();
  if (cfg.blocks.empty()) return out;

  std::map<std::uint64_t, std::size_t> block_index;  // leader -> index
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    block_index[cfg.blocks[i].start] = i;
  }

  // Per-block syscall sites, in execution order.
  std::vector<std::vector<Site>> sites(cfg.blocks.size());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const analysis::BasicBlock& block = cfg.blocks[b];
    for (std::size_t i = 0; i < block.insns.size(); ++i) {
      const isa::Instruction& insn = cfg.reachable.at(block.insns[i]).insn;
      if (insn.op != isa::Op::kSyscall && insn.op != isa::Op::kSysenter) {
        continue;
      }
      Site site;
      site.addr = block.insns[i];
      site.nr = resolve_site_nr(cfg, block, i);
      ++out.sites_total;
      if (site.nr != kAnySyscall) ++out.sites_resolved;
      sites[b].push_back(site);
    }
  }

  // Call discipline: a RET-terminated block continues at some call's
  // fallthrough. With no call-strings, the sound over-approximation is the
  // union of every call fallthrough in the program.
  std::vector<std::size_t> ret_successors;
  std::vector<bool> ends_in_ret(cfg.blocks.size(), false);
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const analysis::BasicBlock& block = cfg.blocks[b];
    if (block.insns.empty()) continue;
    const std::uint64_t last_addr = block.insns.back();
    const isa::Instruction& last = cfg.reachable.at(last_addr).insn;
    if (last.op == isa::Op::kRet) ends_in_ret[b] = true;
    if (last.op == isa::Op::kCallRel) {
      const auto it = block_index.find(last_addr + last.length);
      if (it != block_index.end()) ret_successors.push_back(it->second);
    }
  }

  // Effective successor indices for first-syscall propagation.
  auto successors_of = [&](std::size_t b) {
    std::vector<std::size_t> succs;
    for (const std::uint64_t leader : cfg.blocks[b].succs) {
      const auto it = block_index.find(leader);
      if (it != block_index.end()) succs.push_back(it->second);
    }
    if (ends_in_ret[b]) {
      succs.insert(succs.end(), ret_successors.begin(), ret_successors.end());
    }
    return succs;
  };

  // F(b): the set of possible *first* syscall numbers on any path starting
  // at block b's leader (kAnySyscall = statically unknowable). Monotone
  // under set union, so iterate to the (small) fixpoint.
  std::vector<std::set<std::uint64_t>> first(cfg.blocks.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      std::set<std::uint64_t> next;
      if (!sites[b].empty()) {
        next.insert(sites[b].front().nr);
      } else {
        if (cfg.blocks[b].computed_successor) next.insert(kAnySyscall);
        for (const std::size_t s : successors_of(b)) {
          next.insert(first[s].begin(), first[s].end());
        }
      }
      if (next != first[b]) {
        first[b] = std::move(next);
        changed = true;
      }
    }
  }

  // The followers of the *last* site in block b: the first syscalls of its
  // successor blocks (plus the wildcard if the block's transfer is computed).
  auto block_exit_followers = [&](std::size_t b) {
    std::set<std::uint64_t> followers;
    if (cfg.blocks[b].computed_successor) followers.insert(kAnySyscall);
    for (const std::size_t s : successors_of(b)) {
      followers.insert(first[s].begin(), first[s].end());
    }
    return followers;
  };

  auto add_transition = [&](std::uint64_t from, std::uint64_t to) {
    if (from == kAnySyscall) {
      // Unknown-number site: the monitor cannot know which state it left
      // the task in, so its followers must be allowed from every state.
      out.automaton.add_from_any(to);
    } else {
      out.automaton.add_edge(from, to);
    }
    if (to == kAnySyscall) out.used_wildcard = true;
  };

  // Entry edges: the first syscalls reachable from the program entry.
  const analysis::BasicBlock* entry_block = cfg.block_containing(entry);
  if (entry_block != nullptr) {
    const std::size_t b = block_index.at(entry_block->start);
    for (const std::uint64_t nr : first[b]) {
      add_transition(kEntryState, nr);
    }
  }

  // Site edges.
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (std::size_t i = 0; i < sites[b].size(); ++i) {
      const Site& site = sites[b][i];
      std::set<std::uint64_t> followers;
      if (i + 1 < sites[b].size()) {
        followers.insert(sites[b][i + 1].nr);
      } else {
        followers = block_exit_followers(b);
      }
      for (const std::uint64_t to : followers) {
        add_transition(site.nr, to);
      }
    }
  }

  if (out.automaton.has_wildcard() ||
      out.automaton.from_any().count(kAnySyscall) != 0) {
    out.used_wildcard = true;
  }
  return out;
}

Automaton learn_from_sequence(
    std::span<const std::pair<kern::Tid, std::uint64_t>> stream,
    std::string workload_name, bool complete) {
  Automaton out;
  out.name = std::move(workload_name);
  out.source = "dynamic";
  std::map<kern::Tid, std::uint64_t> state;
  for (const auto& [tid, nr] : stream) {
    const auto it = state.find(tid);
    if (it == state.end()) {
      if (complete) out.add_edge(kEntryState, nr);
      state.emplace(tid, nr);
    } else {
      out.add_edge(it->second, nr);
      it->second = nr;
    }
  }
  return out;
}

Automaton learn_from_trace(const replay::Trace& trace) {
  std::vector<std::pair<kern::Tid, std::uint64_t>> stream;
  stream.reserve(trace.events.size());
  for (const replay::Event& event : trace.events) {
    if (const auto* syscall = std::get_if<replay::SyscallEvent>(&event)) {
      stream.emplace_back(syscall->tid, syscall->nr);
    }
  }
  return learn_from_sequence(
      stream,
      trace.header.workload.empty() ? "trace" : trace.header.workload);
}

}  // namespace lzp::policy
