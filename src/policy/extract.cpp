#include "policy/extract.hpp"

#include <map>
#include <set>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

// Does `insn` write rax? reg_effects covers the data-flow writers (including
// the SYSCALL return-value clobber); HOSTCALL transfers to native code whose
// register effects are unknowable, so it is treated as a clobber.
bool writes_rax(const isa::Instruction& insn) {
  if (insn.op == isa::Op::kHostCall) return true;
  const isa::RegEffects fx = isa::reg_effects(insn);
  for (std::uint8_t i = 0; i < fx.num_writes; ++i) {
    if (fx.writes[i].cls == isa::RegClass::kGpr && fx.writes[i].index == 0) {
      return true;
    }
  }
  return false;
}

// One reachable SYSCALL/SYSENTER site: the set of numbers it can invoke
// ({kAnySyscall} when statically unknown) plus any argument constraints the
// value-flow analysis proved for the invocation.
struct Site {
  std::uint64_t addr = 0;
  std::set<std::uint64_t> nrs;
  PredClause clause;
  SiteResolution::How how = SiteResolution::How::kUnresolved;
  [[nodiscard]] bool resolved() const { return nrs.count(kAnySyscall) == 0; }
};

// Block-local backward scan from the site to the last rax writer,
// recognizing the constant-producing idioms compilers emit for syscall
// numbers: `mov rax, imm`, the 32-bit `mov eax, imm32` form (zero-extends,
// so the decoded imm is the value), and the canonical `xor eax, eax`
// zeroing for nr 0. Any other writer leaves the number unknown.
std::uint64_t resolve_site_nr(const analysis::Cfg& cfg,
                              const analysis::BasicBlock& block,
                              std::size_t site_index) {
  for (std::size_t i = site_index; i-- > 0;) {
    const isa::Instruction& insn = cfg.reachable.at(block.insns[i]).insn;
    if (!writes_rax(insn)) continue;
    if ((insn.op == isa::Op::kMovRI || insn.op == isa::Op::kMovRI32) &&
        insn.r1 == isa::Gpr::rax && insn.imm >= 0 &&
        static_cast<std::uint64_t>(insn.imm) <= kern::kMaxSyscallNumber) {
      return static_cast<std::uint64_t>(insn.imm);
    }
    if (insn.op == isa::Op::kXorRR && insn.r1 == isa::Gpr::rax &&
        insn.r2 == isa::Gpr::rax) {
      return 0;  // xor-self zeroes regardless of the prior value
    }
    return kAnySyscall;  // some other writer: value unknown statically
  }
  return kAnySyscall;  // no writer in this block: set by a predecessor
}

// A constant set qualifies as a resolved syscall-number set only when every
// member is an encodable syscall number (the serializer/parser and the
// automaton's state space are bounded by kMaxSyscallNumber).
bool in_range_nr_set(const analysis::ValueSet& v) {
  if (!v.is_constant_set()) return false;
  for (const std::uint64_t nr : v.values()) {
    if (nr > kern::kMaxSyscallNumber) return false;
  }
  return true;
}

}  // namespace

StaticExtraction extract_static(std::span<const std::uint8_t> bytes,
                                std::uint64_t base, std::uint64_t entry,
                                std::string workload_name,
                                const ExtractOptions& options) {
  StaticExtraction out;
  out.automaton.name = std::move(workload_name);
  out.automaton.source = "static";

  const analysis::Cfg cfg = analysis::build_cfg(bytes, base, entry);
  out.blocks = cfg.blocks.size();
  if (cfg.blocks.empty()) return out;

  analysis::DataflowResult df;
  if (options.dataflow) df = analysis::analyze_dataflow(cfg, entry);

  std::map<std::uint64_t, std::size_t> block_index;  // leader -> index
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    block_index[cfg.blocks[i].start] = i;
  }

  // All sites, plus per-block site ids in execution order. Resolution is
  // two-tier: the block-local idiom scan first, then the value-flow
  // analysis for whatever the local scan could not see (cross-block
  // constants, copies, arithmetic, call-preserved values).
  std::vector<Site> all_sites;
  std::vector<std::vector<std::size_t>> sites(cfg.blocks.size());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const analysis::BasicBlock& block = cfg.blocks[b];
    for (std::size_t i = 0; i < block.insns.size(); ++i) {
      const isa::Instruction& insn = cfg.reachable.at(block.insns[i]).insn;
      if (insn.op != isa::Op::kSyscall && insn.op != isa::Op::kSysenter) {
        continue;
      }
      Site site;
      site.addr = block.insns[i];
      const std::uint64_t local = resolve_site_nr(cfg, block, i);
      if (local != kAnySyscall) {
        site.nrs = {local};
        site.how = SiteResolution::How::kBlockLocal;
        ++out.sites_resolved_blocklocal;
      } else if (options.dataflow) {
        const analysis::ValueSet rax = df.value_at(site.addr, isa::Gpr::rax);
        if (in_range_nr_set(rax)) {
          site.nrs = rax.values();
          site.how = SiteResolution::How::kDataflow;
          ++out.sites_resolved_dataflow;
        }
      }
      if (site.nrs.empty()) site.nrs = {kAnySyscall};
      if (site.resolved() && options.dataflow && options.arg_predicates) {
        // Constraints for the argument registers the dataflow pinned down.
        // Predicates attach to edges INTO the site, so an unresolved site
        // (whose incoming edges land in from_any) never carries one.
        for (std::size_t a = 0; a + 1 < analysis::kDataflowRegs.size(); ++a) {
          const analysis::ValueSet v =
              df.value_at(site.addr, analysis::kDataflowRegs[a + 1]);
          if (v.is_constant_set()) {
            site.clause.push_back({static_cast<std::uint8_t>(a), v.values()});
          }
        }
        if (!site.clause.empty()) ++out.predicated_sites;
      }
      ++out.sites_total;
      if (site.resolved()) ++out.sites_resolved;
      sites[b].push_back(all_sites.size());
      all_sites.push_back(std::move(site));
    }
  }

  // Call discipline: a RET-terminated block continues at some call's
  // fallthrough. With no call-strings, the sound over-approximation is the
  // union of every call fallthrough in the program.
  std::vector<std::size_t> ret_successors;
  std::vector<bool> ends_in_ret(cfg.blocks.size(), false);
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const analysis::BasicBlock& block = cfg.blocks[b];
    if (block.insns.empty()) continue;
    const std::uint64_t last_addr = block.insns.back();
    const isa::Instruction& last = cfg.reachable.at(last_addr).insn;
    if (last.op == isa::Op::kRet) ends_in_ret[b] = true;
    if (last.op == isa::Op::kCallRel) {
      const auto it = block_index.find(last_addr + last.length);
      if (it != block_index.end()) ret_successors.push_back(it->second);
    }
  }

  // Effective successor indices for first-site propagation.
  auto successors_of = [&](std::size_t b) {
    std::vector<std::size_t> succs;
    for (const std::uint64_t leader : cfg.blocks[b].succs) {
      const auto it = block_index.find(leader);
      if (it != block_index.end()) succs.push_back(it->second);
    }
    if (ends_in_ret[b]) {
      succs.insert(succs.end(), ret_successors.begin(), ret_successors.end());
    }
    return succs;
  };

  // F(b): the set of possible *first* syscall SITES on any path starting at
  // block b's leader (kWildcardSite = a path whose next site is statically
  // unknowable). Propagating site ids — not numbers — keeps each site's
  // argument clause attached to the edges that reach it. Monotone under set
  // union, so iterate to the (small) fixpoint.
  constexpr std::size_t kWildcardSite = static_cast<std::size_t>(-1);
  std::vector<std::set<std::size_t>> first(cfg.blocks.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      std::set<std::size_t> next;
      if (!sites[b].empty()) {
        next.insert(sites[b].front());
      } else {
        if (cfg.blocks[b].computed_successor) next.insert(kWildcardSite);
        for (const std::size_t s : successors_of(b)) {
          next.insert(first[s].begin(), first[s].end());
        }
      }
      if (next != first[b]) {
        first[b] = std::move(next);
        changed = true;
      }
    }
  }

  // The follower sites of the *last* site in block b: the first sites of
  // its successor blocks (plus the wildcard if the transfer is computed).
  auto block_exit_followers = [&](std::size_t b) {
    std::set<std::size_t> followers;
    if (cfg.blocks[b].computed_successor) followers.insert(kWildcardSite);
    for (const std::size_t s : successors_of(b)) {
      followers.insert(first[s].begin(), first[s].end());
    }
    return followers;
  };

  auto add_transition = [&](std::uint64_t from, std::uint64_t to,
                            const PredClause* clause) {
    if (from == kAnySyscall) {
      // Unknown-number site: the monitor cannot know which state it left
      // the task in, so its followers must be allowed from every state.
      // from_any is unconstrained by construction — dropping the clause
      // only widens, never unsoundly narrows.
      out.automaton.add_from_any(to);
    } else if (clause != nullptr && !clause->empty()) {
      out.automaton.add_edge(from, to, *clause);
    } else {
      out.automaton.add_edge(from, to);
    }
    if (to == kAnySyscall) out.used_wildcard = true;
  };

  // One source state (`from`) reaching one follower site: an edge per
  // member of the follower's number set, carrying the follower's clause.
  auto link = [&](std::uint64_t from, std::size_t to_id) {
    if (to_id == kWildcardSite) {
      add_transition(from, kAnySyscall, nullptr);
      return;
    }
    const Site& target = all_sites[to_id];
    for (const std::uint64_t nr : target.nrs) {
      add_transition(from, nr, &target.clause);
    }
  };

  // Entry edges: the first sites reachable from the program entry.
  const analysis::BasicBlock* entry_block = cfg.block_containing(entry);
  if (entry_block != nullptr) {
    const std::size_t b = block_index.at(entry_block->start);
    for (const std::size_t id : first[b]) link(kEntryState, id);
  }

  // Site edges: each member of a site's number set is a source state.
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (std::size_t i = 0; i < sites[b].size(); ++i) {
      const Site& site = all_sites[sites[b][i]];
      std::set<std::size_t> followers;
      if (i + 1 < sites[b].size()) {
        followers.insert(sites[b][i + 1]);
      } else {
        followers = block_exit_followers(b);
      }
      for (const std::uint64_t from : site.nrs) {
        for (const std::size_t id : followers) link(from, id);
      }
    }
  }

  if (out.automaton.has_wildcard() ||
      out.automaton.from_any().count(kAnySyscall) != 0) {
    out.used_wildcard = true;
  }
  out.sites.reserve(all_sites.size());
  for (const Site& site : all_sites) {
    out.sites.push_back({site.addr, site.nrs, site.clause, site.how});
  }
  return out;
}

Automaton learn_from_sequence(
    std::span<const std::pair<kern::Tid, std::uint64_t>> stream,
    std::string workload_name, bool complete) {
  Automaton out;
  out.name = std::move(workload_name);
  out.source = "dynamic";
  std::map<kern::Tid, std::uint64_t> state;
  for (const auto& [tid, nr] : stream) {
    const auto it = state.find(tid);
    if (it == state.end()) {
      if (complete) out.add_edge(kEntryState, nr);
      state.emplace(tid, nr);
    } else {
      out.add_edge(it->second, nr);
      it->second = nr;
    }
  }
  return out;
}

Automaton learn_from_trace(const replay::Trace& trace) {
  std::vector<std::pair<kern::Tid, std::uint64_t>> stream;
  stream.reserve(trace.events.size());
  for (const replay::Event& event : trace.events) {
    if (const auto* syscall = std::get_if<replay::SyscallEvent>(&event)) {
      stream.emplace_back(syscall->tid, syscall->nr);
    }
  }
  return learn_from_sequence(
      stream,
      trace.header.workload.empty() ? "trace" : trace.header.workload);
}

}  // namespace lzp::policy
