// Dynamic automaton learning from the trace subsystem's flight recorder.
//
// Header-only adapter: the FlightRecorder ring and its events are
// header-only, so this compiles whether or not the lzp_trace *library* is
// built — lzp_policy itself never links it. A ring that overwrote its
// oldest events (dropped() > 0) no longer knows each task's true first
// syscall, so learning from it drops the entry -> first edges rather than
// invent wrong ones.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "policy/extract.hpp"
#include "trace/events.hpp"
#include "trace/flight_recorder.hpp"

namespace lzp::policy {

[[nodiscard]] inline Automaton learn_from_flight_recorder(
    const trace::FlightRecorder& ring, std::string workload_name) {
  std::vector<std::pair<kern::Tid, std::uint64_t>> stream;
  stream.reserve(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const trace::Event& event = ring.at(i);
    if (event.type == trace::EventType::kSyscallEnter) {
      stream.emplace_back(event.tid, event.a);
    }
  }
  return learn_from_sequence(stream, std::move(workload_name),
                             /*complete=*/ring.dropped() == 0);
}

}  // namespace lzp::policy
