// Automaton extraction: the two policy sources.
//
// STATIC extraction walks the analysis::Cfg reachable from the program entry
// and collects the syscall digraph: for every SYSCALL/SYSENTER site, which
// syscall numbers can be the *next* one invoked on any direct-control-flow
// path. Soundness posture (mirrors the rewrite-safety analyzer's):
//
//   * a site's number is resolved by a block-local backward scan for the
//     last rax write (`mov rax, imm` — the invariant minilibc's
//     emit_syscall provides); any other rax writer, or a scan that leaves
//     the block, makes the site's number unknown and routes its successors
//     into the automaton's from_any set;
//   * computed transfers (JMP_REG / CALL_RAX) between two sites make the
//     first site's follower set unknowable: it gets the kAnySyscall
//     wildcard successor;
//   * RET follows call discipline: when the program contains calls, every
//     ret-terminated path continues at the union of all call fallthroughs
//     (call-strings of length zero — over-approximate, never unsound).
//
// The result over-approximates anything the program can do, so the learned
// DYNAMIC automaton — per-tid syscall sequences out of a replay::Trace or
// the trace subsystem's flight-recorder ring — must be contained in it
// (tests/policy_test.cpp gates static ⊇ dynamic on the webserver).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "isa/assemble.hpp"
#include "policy/automaton.hpp"
#include "replay/trace.hpp"

namespace lzp::policy {

struct StaticExtraction {
  Automaton automaton;
  std::size_t sites_total = 0;     // reachable SYSCALL/SYSENTER sites
  std::size_t sites_resolved = 0;  // sites with a statically known number
  std::size_t blocks = 0;          // CFG basic blocks visited
  bool used_wildcard = false;      // any state degraded to allow-all
};

[[nodiscard]] StaticExtraction extract_static(
    std::span<const std::uint8_t> bytes, std::uint64_t base,
    std::uint64_t entry, std::string workload_name);

[[nodiscard]] inline StaticExtraction extract_static(
    const isa::Program& program) {
  return extract_static(program.image, program.base, program.entry,
                        program.name);
}

// Dynamic learning core: an observed per-task syscall stream, in program
// order. Each task contributes entry -> first edges (when `complete` — a
// truncated stream, e.g. a flight-recorder ring that dropped its oldest
// events, no longer knows the true first syscall) and prev -> next edges.
[[nodiscard]] Automaton learn_from_sequence(
    std::span<const std::pair<kern::Tid, std::uint64_t>> stream,
    std::string workload_name, bool complete = true);

// Dynamic learning from a record/replay trace (replay::Recorder output).
[[nodiscard]] Automaton learn_from_trace(const replay::Trace& trace);

}  // namespace lzp::policy
