// Automaton extraction: the two policy sources.
//
// STATIC extraction walks the analysis::Cfg reachable from the program entry
// and collects the syscall digraph: for every SYSCALL/SYSENTER site, which
// syscall numbers can be the *next* one invoked on any direct-control-flow
// path. Site numbers are resolved in two tiers:
//
//   * a BLOCK-LOCAL backward scan to the last rax writer, recognizing the
//     constant-producing idioms compilers emit for syscall numbers
//     (`mov rax, imm`, the 32-bit `mov eax, imm32` form, and the
//     `xor eax, eax` zeroing idiom). Any other writer, or a scan that
//     leaves the block, makes the number block-locally unknown;
//   * the INTERPROCEDURAL VALUE-FLOW analysis (analysis/dataflow.hpp, on by
//     default — ExtractOptions::dataflow): a site the local scan cannot
//     resolve is resolved when the abstract rax value at the site is a
//     constant set of in-range numbers (a multi-member set contributes one
//     edge per member). The same analysis supplies argument predicates:
//     constant sets for rdi/rsi/rdx/r10 at a resolved site become an
//     ArgConstraint clause on every edge INTO that site's numbers.
//
// Soundness posture (mirrors the rewrite-safety analyzer's):
//
//   * a still-unresolved site routes its successors into the automaton's
//     from_any set (the monitor cannot know which state the site left the
//     task in);
//   * computed transfers (JMP_REG / CALL_RAX) between two sites make the
//     first site's follower set unknowable: it gets the kAnySyscall
//     wildcard successor;
//   * RET follows call discipline: when the program contains calls, every
//     ret-terminated path continues at the union of all call fallthroughs
//     (call-strings of length zero — over-approximate, never unsound).
//
// The result over-approximates anything the program can do, so the learned
// DYNAMIC automaton — per-tid syscall sequences out of a replay::Trace or
// the trace subsystem's flight-recorder ring — must be contained in it
// (tests/policy_test.cpp gates static ⊇ dynamic on the webserver).
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "isa/assemble.hpp"
#include "policy/automaton.hpp"
#include "replay/trace.hpp"

namespace lzp::policy {

struct ExtractOptions {
  // Run the interprocedural value-flow analysis and use it to resolve sites
  // the block-local scan cannot, and (with arg_predicates) to constrain
  // edges by argument values. Off = the block-local-only scan.
  bool dataflow = true;
  // Attach argument predicates to edges into resolved sites whose
  // rdi/rsi/rdx/r10 are constant sets. Requires dataflow; predicates only
  // restrict, so turning this off only widens the policy.
  bool arg_predicates = true;
};

// Per-site extraction record: what the analysis claims about one reachable
// SYSCALL/SYSENTER instruction. Dynamic falsification (bench/
// analysis_accuracy) checks every observed invocation at `addr` against
// `nrs` and `clause` — a mismatch is a static misresolution.
struct SiteResolution {
  enum class How { kUnresolved, kBlockLocal, kDataflow };
  std::uint64_t addr = 0;
  std::set<std::uint64_t> nrs;  // {kAnySyscall} when unresolved
  PredClause clause;            // empty = no argument constraints
  How how = How::kUnresolved;
  [[nodiscard]] bool resolved() const { return how != How::kUnresolved; }
};

struct StaticExtraction {
  Automaton automaton;
  std::vector<SiteResolution> sites;  // one per reachable site, in CFG order
  std::size_t sites_total = 0;     // reachable SYSCALL/SYSENTER sites
  std::size_t sites_resolved = 0;  // sites with a statically known number
  // How each resolved site got its number: the block-local idiom scan, or
  // the value-flow analysis picking up what the local scan could not.
  std::size_t sites_resolved_blocklocal = 0;
  std::size_t sites_resolved_dataflow = 0;
  // Resolved sites carrying at least one argument constraint.
  std::size_t predicated_sites = 0;
  std::size_t blocks = 0;          // CFG basic blocks visited
  bool used_wildcard = false;      // any state degraded to allow-all
};

[[nodiscard]] StaticExtraction extract_static(
    std::span<const std::uint8_t> bytes, std::uint64_t base,
    std::uint64_t entry, std::string workload_name,
    const ExtractOptions& options = {});

[[nodiscard]] inline StaticExtraction extract_static(
    const isa::Program& program, const ExtractOptions& options = {}) {
  return extract_static(program.image, program.base, program.entry,
                        program.name, options);
}

// Dynamic learning core: an observed per-task syscall stream, in program
// order. Each task contributes entry -> first edges (when `complete` — a
// truncated stream, e.g. a flight-recorder ring that dropped its oldest
// events, no longer knows the true first syscall) and prev -> next edges.
[[nodiscard]] Automaton learn_from_sequence(
    std::span<const std::pair<kern::Tid, std::uint64_t>> stream,
    std::string workload_name, bool complete = true);

// Dynamic learning from a record/replay trace (replay::Recorder output).
[[nodiscard]] Automaton learn_from_trace(const replay::Trace& trace);

}  // namespace lzp::policy
