#include "policy/automaton.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

// States and successors print as "entry", "*" or the bare syscall number
// (names go in a trailing comment: numbers are the stable key, names are
// for humans).
std::string token(std::uint64_t id) {
  if (id == kEntryState) return "entry";
  if (id == kAnySyscall) return "*";
  return std::to_string(id);
}

Result<std::uint64_t> parse_token(const std::string& tok) {
  if (tok == "entry") return kEntryState;
  if (tok == "*") return kAnySyscall;
  std::uint64_t value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      return make_error(StatusCode::kInvalidArgument,
                        "automaton: bad state token '" + tok + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (tok.empty() || value > kern::kMaxSyscallNumber) {
    return make_error(StatusCode::kInvalidArgument,
                      "automaton: syscall number out of range: '" + tok + "'");
  }
  return value;
}

// Predicate argument registers by ABI position (SeccompData args 0..3).
constexpr std::array<std::string_view, kNumPredArgs> kArgNames = {
    "rdi", "rsi", "rdx", "r10"};

// Full-u64 decimal (predicate values are argument values, not syscall
// numbers, so no range check applies).
Result<std::uint64_t> parse_u64(const std::string& tok) {
  if (tok.empty()) {
    return make_error(StatusCode::kInvalidArgument,
                      "automaton: empty predicate value");
  }
  std::uint64_t value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      return make_error(StatusCode::kInvalidArgument,
                        "automaton: bad predicate value '" + tok + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::string clause_text(const PredClause& clause) {
  std::string out;
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i != 0) out += "&";
    out += kArgNames[clause[i].arg];
    out += "=";
    bool first = true;
    for (const std::uint64_t v : clause[i].values) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(v);
    }
  }
  return out;
}

std::string predicate_text(const std::vector<PredClause>& clauses) {
  std::string out = "[";
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i != 0) out += ";";
    out += clause_text(clauses[i]);
  }
  out += "]";
  return out;
}

// Sort constraints by arg and intersect duplicate-arg constraints.
// Returns false if the clause became unsatisfiable (empty intersection).
bool normalize_clause(PredClause& clause) {
  std::sort(clause.begin(), clause.end(),
            [](const ArgConstraint& a, const ArgConstraint& b) {
              return a.arg < b.arg;
            });
  PredClause out;
  for (ArgConstraint& c : clause) {
    if (c.values.empty() || c.arg >= kNumPredArgs) return false;
    if (!out.empty() && out.back().arg == c.arg) {
      std::set<std::uint64_t> both;
      std::set_intersection(out.back().values.begin(), out.back().values.end(),
                            c.values.begin(), c.values.end(),
                            std::inserter(both, both.begin()));
      if (both.empty()) return false;
      out.back().values = std::move(both);
    } else {
      out.push_back(std::move(c));
    }
  }
  clause = std::move(out);
  return true;
}

bool clause_holds(const PredClause& clause, const std::uint64_t* args) {
  for (const ArgConstraint& c : clause) {
    if (c.values.count(args[c.arg]) == 0) return false;
  }
  return true;
}

std::string comment_name(std::uint64_t id) {
  if (id == kEntryState || id == kAnySyscall) return {};
  return std::string(kern::syscall_name(id));
}

}  // namespace

void Automaton::add_edge(std::uint64_t from, std::uint64_t to,
                         const PredClause& clause) {
  PredClause normalized = clause;
  if (to == kAnySyscall || normalized.empty() ||
      !normalize_clause(normalized)) {
    // Wildcard successors and degenerate clauses carry no constraint (an
    // unsatisfiable clause widens rather than silently denying: predicates
    // may only restrict what nr-granularity reasoning already allows).
    add_edge(from, to);
    return;
  }
  const bool existed = edges_[from].count(to) != 0;
  edges_[from].insert(to);
  const std::pair<std::uint64_t, std::uint64_t> key{from, to};
  if (existed && predicates_.count(key) == 0) return;  // stays unconstrained
  auto& clauses = predicates_[key];
  if (std::find(clauses.begin(), clauses.end(), normalized) == clauses.end()) {
    clauses.push_back(std::move(normalized));
    std::sort(clauses.begin(), clauses.end());
  }
}

bool Automaton::allows(std::uint64_t state, std::uint64_t nr,
                       const std::uint64_t* args) const {
  if (from_any_.count(nr) != 0 || from_any_.count(kAnySyscall) != 0) {
    return true;
  }
  const auto it = edges_.find(state);
  if (it == edges_.end()) return true;
  if (it->second.count(kAnySyscall) != 0) return true;
  if (it->second.count(nr) == 0) return false;
  const auto pit = predicates_.find({state, nr});
  if (pit == predicates_.end()) return true;
  for (const PredClause& clause : pit->second) {
    if (clause_holds(clause, args)) return true;
  }
  return false;
}

std::set<std::uint64_t> Automaton::syscalls() const {
  std::set<std::uint64_t> out;
  auto note = [&out](std::uint64_t id) {
    if (id != kEntryState && id != kAnySyscall) out.insert(id);
  };
  for (const auto& [from, tos] : edges_) {
    note(from);
    for (const std::uint64_t to : tos) note(to);
  }
  for (const std::uint64_t to : from_any_) note(to);
  return out;
}

bool Automaton::contains(const Automaton& other) const {
  for (const std::uint64_t to : other.from_any_) {
    // A global rule in `other` must be global here too: a per-state edge
    // would permit strictly fewer transitions.
    if (from_any_.count(to) == 0) return false;
  }
  for (const auto& [from, tos] : other.edges_) {
    for (const std::uint64_t to : tos) {
      if (to == kAnySyscall) {
        // other allows everything from `from`; we must too.
        const auto it = edges_.find(from);
        if (it != edges_.end() && it->second.count(kAnySyscall) == 0) {
          return false;
        }
        continue;
      }
      if (!allows(from, to)) return false;
    }
  }
  return true;
}

void Automaton::merge(const Automaton& other) {
  for (const auto& [from, tos] : other.edges_) {
    for (const std::uint64_t to : tos) {
      const auto* pred = other.predicate(from, to);
      if (pred == nullptr) {
        add_edge(from, to);
      } else {
        for (const PredClause& clause : *pred) add_edge(from, to, clause);
      }
    }
  }
  from_any_.insert(other.from_any_.begin(), other.from_any_.end());
  if (source != other.source) source = "merged";
}

std::string Automaton::behavior_signature(std::uint64_t state) const {
  if (from_any_.count(kAnySyscall) != 0) return "*";
  const auto it = edges_.find(state);
  if (it == edges_.end() || it->second.count(kAnySyscall) != 0) return "*";
  // Effective constraint per allowed nr: from_any members are always
  // unconstrained (allows() consults from_any first), per-state members
  // carry their predicate if any.
  std::map<std::uint64_t, std::string> effective;
  for (const std::uint64_t to : from_any_) effective[to] = "";
  for (const std::uint64_t to : it->second) {
    if (effective.count(to) != 0) continue;  // from_any wins (unconstrained)
    const auto* pred = predicate(state, to);
    effective[to] = pred == nullptr ? "" : predicate_text(*pred);
  }
  std::string sig;
  for (const auto& [nr, pred] : effective) {
    sig += std::to_string(nr);
    sig += pred;
    sig += " ";
  }
  return sig;
}

std::string Automaton::serialize() const {
  std::ostringstream out;
  out << "# lazypoline policy automaton v2\n";
  out << "name " << (name.empty() ? "-" : name) << "\n";
  out << "source " << (source.empty() ? "-" : source) << "\n";
  if (!from_any_.empty()) {
    out << "from_any";
    for (const std::uint64_t to : from_any_) out << " " << token(to);
    out << "\n";
  }
  for (const auto& [from, tos] : edges_) {
    out << "state " << token(from) << " ->";
    for (const std::uint64_t to : tos) {
      out << " " << token(to);
      const auto* pred = predicate(from, to);
      if (pred != nullptr) out << predicate_text(*pred);
    }
    const std::string comment = comment_name(from);
    if (!comment.empty()) out << "  # " << comment;
    out << "\n";
  }
  return out.str();
}

Result<Automaton> Automaton::parse(const std::string& text) {
  Automaton out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line
    auto fail = [&lineno](const std::string& why) {
      return make_error(StatusCode::kInvalidArgument,
                        "automaton line " + std::to_string(lineno) + ": " + why);
    };
    if (keyword == "name" || keyword == "source") {
      std::string value;
      if (!(fields >> value)) return fail("missing value after " + keyword);
      if (value == "-") value.clear();
      (keyword == "name" ? out.name : out.source) = value;
    } else if (keyword == "from_any") {
      std::string tok;
      while (fields >> tok) {
        auto id = parse_token(tok);
        if (!id.is_ok()) return fail(id.status().to_string());
        out.add_from_any(id.value());
      }
    } else if (keyword == "state") {
      std::string from_tok;
      std::string arrow;
      if (!(fields >> from_tok >> arrow) || arrow != "->") {
        return fail("expected 'state <from> -> <to>...'");
      }
      auto from = parse_token(from_tok);
      if (!from.is_ok()) return fail(from.status().to_string());
      if (from.value() == kAnySyscall) {
        return fail("'*' is only valid as a successor");
      }
      // Materialize the state even with no successors (an explicit
      // deny-everything-after state).
      out.edges_[from.value()];
      std::string tok;
      while (fields >> tok) {
        // Optional predicate suffix: to[rdi=1,2&rsi=0;rdx=7].
        std::vector<PredClause> clauses;
        const auto bracket = tok.find('[');
        if (bracket != std::string::npos) {
          if (tok.back() != ']') return fail("unterminated predicate in '" + tok + "'");
          std::string body = tok.substr(bracket + 1,
                                        tok.size() - bracket - 2);
          tok.resize(bracket);
          if (body.empty()) return fail("empty predicate");
          std::istringstream clause_in(body);
          std::string clause_tok;
          while (std::getline(clause_in, clause_tok, ';')) {
            PredClause clause;
            std::istringstream con_in(clause_tok);
            std::string con_tok;
            while (std::getline(con_in, con_tok, '&')) {
              const auto eq = con_tok.find('=');
              if (eq == std::string::npos) {
                return fail("bad predicate constraint '" + con_tok + "'");
              }
              const std::string arg_name = con_tok.substr(0, eq);
              ArgConstraint constraint;
              bool known = false;
              for (std::size_t i = 0; i < kArgNames.size(); ++i) {
                if (arg_name == kArgNames[i]) {
                  constraint.arg = static_cast<std::uint8_t>(i);
                  known = true;
                  break;
                }
              }
              if (!known) {
                return fail("unknown predicate register '" + arg_name + "'");
              }
              std::istringstream val_in(con_tok.substr(eq + 1));
              std::string val_tok;
              while (std::getline(val_in, val_tok, ',')) {
                auto value = parse_u64(val_tok);
                if (!value.is_ok()) return fail(value.status().to_string());
                constraint.values.insert(value.value());
              }
              if (constraint.values.empty()) {
                return fail("empty value set in predicate");
              }
              clause.push_back(std::move(constraint));
            }
            if (clause.empty()) return fail("empty predicate clause");
            clauses.push_back(std::move(clause));
          }
        }
        auto to = parse_token(tok);
        if (!to.is_ok()) return fail(to.status().to_string());
        if (clauses.empty()) {
          out.add_edge(from.value(), to.value());
        } else {
          for (const PredClause& clause : clauses) {
            out.add_edge(from.value(), to.value(), clause);
          }
        }
      }
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }
  return out;
}

MinimizeResult minimize(const Automaton& automaton) {
  MinimizeResult result;
  result.states_before = automaton.state_count();
  Automaton& out = result.automaton;
  out.name = automaton.name;
  out.source = automaton.source;
  for (const std::uint64_t to : automaton.from_any()) out.add_from_any(to);

  if (automaton.from_any().count(kAnySyscall) != 0) {
    // Globally allow-all: every per-state rule is shadowed.
    for (const auto& [from, tos] : automaton.edges()) {
      result.edges_dropped += tos.size();
    }
    return result;
  }

  std::set<std::string> signatures;
  for (const auto& [from, tos] : automaton.edges()) {
    if (tos.count(kAnySyscall) != 0) {
      // A wildcard state behaves exactly like an unknown state (allow-all
      // under allows()); dropping it preserves the language and removes a
      // whole filter from the compiled set.
      result.edges_dropped += tos.size();
      continue;
    }
    // Keep the state (an explicit empty state is deny-all-but-from_any,
    // which is NOT the same as unknown, so it must survive).
    ++result.states_after;
    signatures.insert(automaton.behavior_signature(from));
    bool any_kept = false;
    for (const std::uint64_t to : tos) {
      if (automaton.from_any().count(to) != 0) {
        // from_any already allows `to` unconditionally from every state;
        // the per-state member (predicated or not) is redundant.
        ++result.edges_dropped;
        continue;
      }
      any_kept = true;
      const auto* pred = automaton.predicate(from, to);
      if (pred == nullptr) {
        out.add_edge(from, to);
      } else {
        for (const PredClause& clause : *pred) out.add_edge(from, to, clause);
      }
    }
    if (!any_kept) {
      // Materialize the (now empty) state explicitly.
      out.add_state(from);
    }
  }
  result.classes = signatures.size();
  return result;
}

}  // namespace lzp::policy
