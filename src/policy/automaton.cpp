#include "policy/automaton.hpp"

#include <sstream>
#include <vector>

#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

// States and successors print as "entry", "*" or the bare syscall number
// (names go in a trailing comment: numbers are the stable key, names are
// for humans).
std::string token(std::uint64_t id) {
  if (id == kEntryState) return "entry";
  if (id == kAnySyscall) return "*";
  return std::to_string(id);
}

Result<std::uint64_t> parse_token(const std::string& tok) {
  if (tok == "entry") return kEntryState;
  if (tok == "*") return kAnySyscall;
  std::uint64_t value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      return make_error(StatusCode::kInvalidArgument,
                        "automaton: bad state token '" + tok + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (tok.empty() || value > kern::kMaxSyscallNumber) {
    return make_error(StatusCode::kInvalidArgument,
                      "automaton: syscall number out of range: '" + tok + "'");
  }
  return value;
}

std::string comment_name(std::uint64_t id) {
  if (id == kEntryState || id == kAnySyscall) return {};
  return std::string(kern::syscall_name(id));
}

}  // namespace

std::set<std::uint64_t> Automaton::syscalls() const {
  std::set<std::uint64_t> out;
  auto note = [&out](std::uint64_t id) {
    if (id != kEntryState && id != kAnySyscall) out.insert(id);
  };
  for (const auto& [from, tos] : edges_) {
    note(from);
    for (const std::uint64_t to : tos) note(to);
  }
  for (const std::uint64_t to : from_any_) note(to);
  return out;
}

bool Automaton::contains(const Automaton& other) const {
  for (const std::uint64_t to : other.from_any_) {
    // A global rule in `other` must be global here too: a per-state edge
    // would permit strictly fewer transitions.
    if (from_any_.count(to) == 0) return false;
  }
  for (const auto& [from, tos] : other.edges_) {
    for (const std::uint64_t to : tos) {
      if (to == kAnySyscall) {
        // other allows everything from `from`; we must too.
        const auto it = edges_.find(from);
        if (it != edges_.end() && it->second.count(kAnySyscall) == 0) {
          return false;
        }
        continue;
      }
      if (!allows(from, to)) return false;
    }
  }
  return true;
}

void Automaton::merge(const Automaton& other) {
  for (const auto& [from, tos] : other.edges_) {
    edges_[from].insert(tos.begin(), tos.end());
  }
  from_any_.insert(other.from_any_.begin(), other.from_any_.end());
  if (source != other.source) source = "merged";
}

std::string Automaton::serialize() const {
  std::ostringstream out;
  out << "# lazypoline policy automaton v1\n";
  out << "name " << (name.empty() ? "-" : name) << "\n";
  out << "source " << (source.empty() ? "-" : source) << "\n";
  if (!from_any_.empty()) {
    out << "from_any";
    for (const std::uint64_t to : from_any_) out << " " << token(to);
    out << "\n";
  }
  for (const auto& [from, tos] : edges_) {
    out << "state " << token(from) << " ->";
    for (const std::uint64_t to : tos) out << " " << token(to);
    const std::string comment = comment_name(from);
    if (!comment.empty()) out << "  # " << comment;
    out << "\n";
  }
  return out.str();
}

Result<Automaton> Automaton::parse(const std::string& text) {
  Automaton out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line
    auto fail = [&lineno](const std::string& why) {
      return make_error(StatusCode::kInvalidArgument,
                        "automaton line " + std::to_string(lineno) + ": " + why);
    };
    if (keyword == "name" || keyword == "source") {
      std::string value;
      if (!(fields >> value)) return fail("missing value after " + keyword);
      if (value == "-") value.clear();
      (keyword == "name" ? out.name : out.source) = value;
    } else if (keyword == "from_any") {
      std::string tok;
      while (fields >> tok) {
        auto id = parse_token(tok);
        if (!id.is_ok()) return fail(id.status().to_string());
        out.add_from_any(id.value());
      }
    } else if (keyword == "state") {
      std::string from_tok;
      std::string arrow;
      if (!(fields >> from_tok >> arrow) || arrow != "->") {
        return fail("expected 'state <from> -> <to>...'");
      }
      auto from = parse_token(from_tok);
      if (!from.is_ok()) return fail(from.status().to_string());
      if (from.value() == kAnySyscall) {
        return fail("'*' is only valid as a successor");
      }
      // Materialize the state even with no successors (an explicit
      // deny-everything-after state).
      out.edges_[from.value()];
      std::string tok;
      while (fields >> tok) {
        auto to = parse_token(tok);
        if (!to.is_ok()) return fail(to.status().to_string());
        out.add_edge(from.value(), to.value());
      }
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }
  return out;
}

}  // namespace lzp::policy
