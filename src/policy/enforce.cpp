#include "policy/enforce.hpp"

#include <array>

#include "bpf/seccomp_filter.hpp"
#include "kernel/signals.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::policy {
namespace {

std::uint32_t violation_action_for(const EnforcerOptions& options) {
  switch (options.verdict) {
    case Verdict::kLogOnly:
      return bpf::SECCOMP_RET_LOG;
    case Verdict::kDenyErrno:
      return bpf::SECCOMP_RET_ERRNO |
             (static_cast<std::uint32_t>(options.deny_errno) &
              bpf::SECCOMP_RET_DATA);
    case Verdict::kKill:
      return bpf::SECCOMP_RET_KILL_PROCESS;
  }
  return bpf::SECCOMP_RET_KILL_PROCESS;
}

}  // namespace

Result<std::shared_ptr<PolicyEnforcer>> PolicyEnforcer::create(
    const Automaton& automaton, EnforcerOptions options,
    std::shared_ptr<interpose::SyscallHandler> inner) {
  auto compiled = compile_to_seccomp(automaton, violation_action_for(options),
                                     options.compile);
  if (!compiled.is_ok()) return compiled.status();
  return std::shared_ptr<PolicyEnforcer>(
      new PolicyEnforcer(automaton, std::move(compiled).value(), options,
                         std::move(inner)));
}

PolicyEnforcer::Decision PolicyEnforcer::decide(
    kern::Tid tid, std::uint64_t nr, std::uint64_t site,
    const std::array<std::uint64_t, 6>& args) {
  // The filter runs over a synthesized seccomp_data, exactly what a kernel
  // would hand an attached program. Built before taking the lock.
  bpf::SeccompData data;
  data.nr = static_cast<std::int32_t>(nr);
  data.arch = bpf::kAuditArchX86_64;
  data.instruction_pointer = site;
  for (std::size_t i = 0; i < 6; ++i) data.args[i] = args[i];
  std::array<std::uint8_t, bpf::SeccompData::kSize> bytes{};
  data.serialize_into(bytes);

  std::lock_guard<std::mutex> lock(mu_);
  Decision decision;
  const auto state_it = task_state_.find(tid);
  decision.from_state =
      state_it == task_state_.end() ? kEntryState : state_it->second;

  ++stats_.transitions_checked;
  ++stats_.state_checks[decision.from_state];

  bool advance = true;
  if (options_.always_allow.count(nr) != 0) {
    decision.kind = kern::PolicyDecision::kAlwaysAllow;
    ++stats_.always_allows;
  } else if (const StatePolicy* sp = compiled_.find(decision.from_state);
             sp == nullptr || sp->wildcard) {
    // State the automaton never constrained (or constrained to allow-all):
    // the lowered filter is return_constant(ALLOW), no membership test runs.
    decision.kind = kern::PolicyDecision::kWildcardAllow;
    ++stats_.wildcard_allows;
  } else {
    const auto run = bpf::run(sp->filter, bytes);
    // The filter validated at compile time, so run cannot fail; if it
    // somehow does, fail closed.
    const std::uint32_t action =
        run.is_ok() ? run.value().value : compiled_.violation_action;
    if (run.is_ok()) stats_.bpf_insns_executed += run.value().insns_executed;
    if (action == bpf::SECCOMP_RET_ALLOW) {
      decision.kind = kern::PolicyDecision::kAllow;
    } else {
      ++stats_.violations;
      ++stats_.state_violations[decision.from_state];
      switch (options_.verdict) {
        case Verdict::kLogOnly:
          decision.kind = kern::PolicyDecision::kViolationLogged;
          ++stats_.logged;
          break;
        case Verdict::kDenyErrno:
          decision.kind = kern::PolicyDecision::kViolationDenied;
          ++stats_.denied;
          // The denied syscall never executes: the task stays in its
          // pre-violation state.
          advance = false;
          break;
        case Verdict::kKill:
          decision.kind = kern::PolicyDecision::kViolationKilled;
          ++stats_.killed;
          advance = false;
          break;
      }
    }
  }
  if (advance) task_state_[tid] = nr;
  return decision;
}

void PolicyEnforcer::emit_probe(interpose::InterposeContext& ctx,
                                std::uint64_t nr, const Decision& decision) {
  if (auto* sink = ctx.machine().trace_sink()) {
    sink->on_policy_decision(ctx.task(), nr, decision.from_state,
                             decision.kind);
  }
}

std::uint64_t PolicyEnforcer::apply_verdict(interpose::InterposeContext& ctx,
                                            const Decision& decision) {
  if (decision.kind == kern::PolicyDecision::kViolationKilled) {
    ctx.machine().kill_process(
        *ctx.task().process, 128 + kern::kSigsys,
        "policy violation: " +
            std::string(kern::syscall_name(ctx.request().nr)) +
            " not allowed from state " +
            (decision.from_state == kEntryState
                 ? std::string("entry")
                 : std::string(kern::syscall_name(decision.from_state))));
  }
  return kern::errno_result(options_.deny_errno);
}

std::uint64_t PolicyEnforcer::handle(interpose::InterposeContext& ctx) {
  const kern::Tid tid = ctx.task().tid;
  const std::uint64_t nr = ctx.request().nr;

  {
    // ptrace path: this syscall was already checked (and passed) at the
    // entry stop; don't advance the automaton twice.
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pre_checked_.find(tid);
    if (it != pre_checked_.end() && it->second == nr) {
      pre_checked_.erase(it);
      return inner_->handle(ctx);
    }
  }

  const Decision decision =
      decide(tid, nr, ctx.request().site, ctx.request().args);
  emit_probe(ctx, nr, decision);
  if (decision.kind == kern::PolicyDecision::kViolationDenied ||
      decision.kind == kern::PolicyDecision::kViolationKilled) {
    return apply_verdict(ctx, decision);
  }
  return inner_->handle(ctx);
}

bool PolicyEnforcer::pre_execute(interpose::InterposeContext& ctx,
                                 std::uint64_t* result) {
  const std::uint64_t nr = ctx.request().nr;
  // The ptrace tool runs handle() for exit/exit_group at the entry stop
  // (there is no exit stop for them) and still consults pre_execute; the
  // check already happened there.
  if (nr == kern::kSysExit || nr == kern::kSysExitGroup) return false;

  const kern::Tid tid = ctx.task().tid;
  const Decision decision =
      decide(tid, nr, ctx.request().site, ctx.request().args);
  emit_probe(ctx, nr, decision);
  if (decision.kind == kern::PolicyDecision::kViolationDenied ||
      decision.kind == kern::PolicyDecision::kViolationKilled) {
    *result = apply_verdict(ctx, decision);
    return true;  // suppress execution; handle() will not be called
  }
  // Allowed (or log-only): let it run, and tell the exit-stop handle() call
  // that this one is already accounted for.
  std::lock_guard<std::mutex> lock(mu_);
  pre_checked_[tid] = nr;
  return false;
}

EnforcerStats PolicyEnforcer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PolicyEnforcer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  task_state_.clear();
  pre_checked_.clear();
  stats_ = EnforcerStats{};
}

}  // namespace lzp::policy
