// JIT tracing: the paper's headline scenario (§V-A). A tcc-style runner
// compiles C source at run time; the generated code performs syscalls whose
// instructions did not exist when any static rewriter could have scanned the
// binary. lazypoline's SUD slow path discovers them at first use and rewrites
// them, so the trace is complete — run the same scenario with
// ZpolineMechanism to watch the getpid disappear from the trace.
//
// Build & run:  cmake --build build && ./build/examples/jit_tracing
#include <cstdio>

#include "apps/jitcc.hpp"
#include "core/lazypoline.hpp"
#include "kernel/machine.hpp"

using namespace lzp;

int main() {
  const std::string cleaned = R"(
    int fib(int n) {
      if (n <= 1) { return n; }
      return fib(n - 1) + fib(n - 2);
    }

    int main() {
      int pid = syscall1(39, 0);   // getpid — JIT-generated syscall!
      int tid = syscall1(186, 0);  // gettid — another one
      if (pid == tid) {
        return fib(10);            // 55, computed by recursive JIT code
      }
      return 0;
    })";

  kern::Machine machine;
  machine.mmap_min_addr = 0;
  if (auto seeded = machine.vfs().put_file(
          "fib.c", std::vector<std::uint8_t>(cleaned.begin(), cleaned.end()));
      !seeded.is_ok()) {
    return 1;
  }

  auto runner = apps::make_jit_runner(machine, "fib.c");
  if (!runner.is_ok()) {
    std::fprintf(stderr, "runner: %s\n", runner.status().to_string().c_str());
    return 1;
  }
  std::printf("static syscall sites in the runner binary: %zu\n",
              runner.value().static_syscall_sites);

  machine.register_program(runner.value().program);
  auto tid = machine.load(runner.value().program);
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto lazypoline = core::Lazypoline::create(machine, {});
  if (!lazypoline->install(machine, tid.value(), handler).is_ok()) return 1;

  const auto stats = machine.run();
  if (!stats.all_exited) {
    std::fprintf(stderr, "hung: %s\n", machine.last_fatal().c_str());
    return 1;
  }

  std::printf("full trace (note the getpid/gettid from JIT-generated code):\n");
  for (const auto& record : handler->trace()) {
    const bool jit = record.nr == kern::kSysGetpid || record.nr == kern::kSysGettid;
    std::printf("  %s%s\n", record.to_string().c_str(), jit ? "   <-- JIT" : "");
  }
  std::printf("\nguest exit code (fib(10)): %d\n",
              machine.find_task(tid.value())->exit_code);
  std::printf("slow-path discoveries: %llu (includes the JIT sites)\n",
              static_cast<unsigned long long>(lazypoline->stats().slow_path_hits));
  return machine.find_task(tid.value())->exit_code == 55 ? 0 : 1;
}
