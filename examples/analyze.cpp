// analyze — the static rewrite-safety analyzer as a command-line tool.
//
// Runs CFG + superset disassembly (src/analysis) over a named workload's
// program image, classifies every candidate syscall window with a verdict
// (SAFE / UNSAFE_OVERLAP / UNSAFE_JUMP_INTO_WINDOW / UNKNOWN), and compares
// the analyzer's SAFE set as an eager-rewrite list against the raw byte
// scan, the linear sweep, and the assembler's ground truth.
//
//   ./build/examples/analyze                         # webserver, summary
//   ./build/examples/analyze --workload=adversarial --listing
//   ./build/examples/analyze --json=report.json      # machine-readable
//   ./build/examples/analyze --workload=webserver --gate
//
// --gate is the scripts/check.sh leg: it additionally runs the workload
// under lazypoline twice — lazy-only and verified-eager — with the runtime
// cross-checker attached, and fails if (a) the analyzer marked SAFE a window
// that is not a genuine syscall instruction, (b) the eager rewriter patched
// more sites than the analyzer proved SAFE, (c) the cross-checker saw any
// dynamic observation contradicting a SAFE verdict, or (d) the two modes
// disagree on the number of interposed syscalls (eager must change *when*
// sites are rewritten, never *what* is interposed).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/crosscheck.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/report.hpp"
#include "policy/extract.hpp"
#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "disasm/scanner.hpp"
#include "interpose/handler.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"

using namespace lzp;

namespace {

constexpr std::uint64_t kFileSize = 4096;
constexpr std::uint64_t kRequests = 400;

void die(const std::string& message) {
  std::fprintf(stderr, "analyze: %s\n", message.c_str());
  std::exit(2);
}

template <typename T>
T unwrap(Result<T> result, const char* what) {
  if (!result.is_ok()) die(std::string(what) + ": " + result.status().to_string());
  return std::move(result).value();
}

// A workload is a program builder plus an optional post-load machine setup
// (program construction is per-machine because hostcall bindings are).
struct Workload {
  std::function<isa::Program(kern::Machine&)> build;
  std::function<void(kern::Machine&, kern::Tid)> setup;
};

Workload webserver_workload() {
  Workload w;
  w.build = [](kern::Machine& machine) {
    machine.mmap_min_addr = 0;
    (void)machine.vfs().put_file_of_size("index.html", kFileSize);
    return unwrap(
        apps::make_webserver(machine, apps::nginx_profile(), "index.html"),
        "make webserver");
  };
  w.setup = [](kern::Machine& machine, kern::Tid tid) {
    const auto profile = apps::nginx_profile();
    kern::ClientWorkload load;
    load.connections = 36;
    load.total_requests = kRequests;
    load.response_bytes = profile.header_bytes + kFileSize;
    const int listener = machine.net().create_listener(load);
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
  };
  return w;
}

Workload getpid_loop_workload() {
  Workload w;
  w.build = [](kern::Machine& machine) {
    machine.mmap_min_addr = 0;
    isa::Assembler a;
    const auto entry = a.new_label();
    const auto loop = a.new_label();
    const auto done = a.new_label();
    a.bind(entry);
    a.mov(isa::Gpr::rbx, 100);
    a.bind(loop);
    a.cmp(isa::Gpr::rbx, 0);
    a.jz(done);
    a.mov(isa::Gpr::rax, kern::kSysGetpid);
    a.syscall_();
    a.sub(isa::Gpr::rbx, 1);
    a.jmp(loop);
    a.bind(done);
    apps::emit_exit(a, 0);
    return unwrap(isa::make_program("getpid-loop", a, entry), "assemble loop");
  };
  return w;
}

// Every classic disassembly trap in one image. Only the entry path executes;
// the baits are reachable (or deliberately unreachable) for the analyzer.
Workload adversarial_workload() {
  Workload w;
  w.build = [](kern::Machine& machine) {
    machine.mmap_min_addr = 0;
    isa::Assembler a;
    const auto entry = a.new_label();
    const auto gadget = a.new_label();
    const auto mid = a.new_label();
    const auto after_data = a.new_label();
    a.bind(entry);
    // Descent explores the gadget arm; runtime never takes it (rbx != 0x7777).
    a.mov(isa::Gpr::rbx, 1);
    a.cmp(isa::Gpr::rbx, 0x7777);
    a.jz(gadget);
    // A genuine, provably SAFE syscall.
    a.mov(isa::Gpr::rax, kern::kSysGetpid);
    a.syscall_();
    // Overlap bait: the immediate's low bytes are 0F 05 — a raw scan flags
    // them, but they live inside this reachable mov.
    a.mov(isa::Gpr::rcx, 0x050FULL);
    a.jmp(after_data);
    // Data island with a syscall-looking pair; unreachable by descent.
    a.db({0x68, 0x69, 0x0F, 0x05, 0x0A, 0x00});
    // Desync header: 0xB8 swallows the following bytes in a linear sweep,
    // hiding a *genuine* (though never-executed) syscall. Unreachable by
    // direct control flow -> UNKNOWN, left to lazy discovery.
    a.db({0xB8});
    a.mov(isa::Gpr::rax, kern::kSysGetpid);
    a.syscall_();
    a.bind(after_data);
    apps::emit_exit(a, 0);
    // Jump-into-window gadget: the 0F 05 window is reachable by fallthrough
    // AND `mid` targets its second byte.
    a.bind(gadget);
    a.jz(mid);
    a.db({0x0F});
    a.bind(mid);
    a.db({0x05});
    a.ret();
    return unwrap(isa::make_program("adversarial", a, entry), "assemble");
  };
  return w;
}

Workload make_workload(const std::string& name) {
  if (name == "webserver") return webserver_workload();
  if (name == "getpid-loop") return getpid_loop_workload();
  if (name == "adversarial") return adversarial_workload();
  die("unknown workload '" + name +
      "' (expected webserver|getpid-loop|adversarial)");
  return {};
}

void print_accuracy_row(const char* label, std::size_t reported,
                        std::size_t tp, std::size_t fp, std::size_t missed) {
  std::printf("  %-22s %8zu %8zu %8zu %8zu\n", label, reported, tp, fp, missed);
}

// The §II-B comparison: each strategy's site list scored against assembler
// ground truth. For the analyzer, the "reported" list is its SAFE set — the
// sites an eager rewriter would patch.
void print_accuracy_table(const isa::Program& program,
                          const analysis::Analysis& result) {
  const auto score = [&](disasm::Strategy strategy, const char* label) {
    const auto scan = disasm::scan(program.image, program.base, strategy);
    const auto acc = disasm::evaluate(scan, program);
    print_accuracy_row(label, scan.syscall_sites.size(),
                       acc.true_positives.size(), acc.false_positives.size(),
                       acc.missed.size());
  };
  std::printf("  %-22s %8s %8s %8s %8s\n", "strategy", "reported", "true+",
              "false+", "missed");
  score(disasm::Strategy::kRawBytes, "raw byte scan");
  score(disasm::Strategy::kLinearSweep, "linear sweep");
  score(disasm::Strategy::kUnion, "union");
  const auto acc = analysis::evaluate(result, program);
  print_accuracy_row("cfg analyzer (SAFE)", acc.safe_true.size() + acc.safe_false.size(),
                     acc.safe_true.size(), acc.safe_false.size(),
                     acc.not_eager.size());
  std::printf("  (analyzer 'missed' = genuine sites deferred to lazy/SUD "
              "discovery, not lost)\n");
}

struct DynamicRun {
  core::LazypolineStats stats;
  std::shared_ptr<analysis::CrossChecker> checker;
  std::uint64_t syscalls_dispatched = 0;
  bool ok = false;
};

DynamicRun run_under_lazypoline(const Workload& workload, bool eager) {
  DynamicRun run;
  kern::Machine machine;
  const isa::Program program = workload.build(machine);
  machine.register_program(program);
  const kern::Tid tid = unwrap(machine.load(program), "load");
  if (workload.setup) workload.setup(machine, tid);

  core::LazypolineConfig config;
  config.eager_verified_rewrite = eager;
  auto runtime = core::Lazypoline::create(machine, config);
  run.checker = std::make_shared<analysis::CrossChecker>();
  run.checker->add_region(
      analysis::analyze(program.image, program.base, program.entry));
  runtime->set_cross_checker(run.checker);
  const Status status = runtime->install(
      machine, tid, std::make_shared<interpose::DummyHandler>());
  if (!status.is_ok()) die("lazypoline install: " + status.to_string());

  const auto stats = machine.run();
  run.stats = runtime->stats();
  run.syscalls_dispatched = machine.find_task(tid)->syscalls_dispatched;
  run.ok = stats.all_exited;
  if (!run.ok) std::fprintf(stderr, "analyze: run hung: %s\n",
                            machine.last_fatal().c_str());
  return run;
}

int run_gate(const std::string& workload_name, const Workload& workload,
             const analysis::Analysis& result, const isa::Program& program) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "analyze --gate: FAIL: %s\n", what.c_str());
    ++failures;
  };

  const auto acc = analysis::evaluate(result, program);
  if (!acc.sound()) {
    fail(std::to_string(acc.safe_false.size()) +
         " SAFE verdict(s) on windows that are not genuine syscall sites");
  }

  const DynamicRun lazy = run_under_lazypoline(workload, /*eager=*/false);
  const DynamicRun eager = run_under_lazypoline(workload, /*eager=*/true);
  if (!lazy.ok || !eager.ok) fail("workload did not run to completion");

  const std::size_t safe_count = result.count(analysis::Verdict::kSafe);
  if (eager.stats.eager_sites_rewritten > safe_count) {
    fail("eager rewriter patched " +
         std::to_string(eager.stats.eager_sites_rewritten) +
         " sites but only " + std::to_string(safe_count) + " are SAFE");
  }
  if (eager.checker->safe_disagreements() != 0) {
    fail(std::to_string(eager.checker->safe_disagreements()) +
         " dynamic observation(s) contradicting a SAFE verdict");
  }
  if (lazy.checker->safe_disagreements() != 0) {
    fail("lazy run contradicts SAFE verdict(s)");
  }
  if (lazy.stats.entry_invocations != eager.stats.entry_invocations) {
    fail("interposed-syscall counts diverge: lazy=" +
         std::to_string(lazy.stats.entry_invocations) + " eager=" +
         std::to_string(eager.stats.entry_invocations));
  }
  if (eager.stats.eager_sites_rewritten == 0) {
    fail("analyzer proved no site SAFE on " + workload_name +
         " — eager mode is vacuous");
  }
  if (eager.stats.slow_path_hits >= lazy.stats.slow_path_hits &&
      lazy.stats.slow_path_hits > 0) {
    fail("eager mode saved no slow-path discoveries (lazy=" +
         std::to_string(lazy.stats.slow_path_hits) + " eager=" +
         std::to_string(eager.stats.slow_path_hits) + ")");
  }

  std::printf("\ngate: %s under lazypoline (%llu interposed syscalls)\n",
              workload_name.c_str(),
              static_cast<unsigned long long>(eager.stats.entry_invocations));
  std::printf("  lazy-only : slow-path discoveries %llu, sites rewritten %llu\n",
              static_cast<unsigned long long>(lazy.stats.slow_path_hits),
              static_cast<unsigned long long>(lazy.stats.sites_rewritten));
  std::printf("  verified  : slow-path discoveries %llu, eager-rewritten %llu,"
              " deferred %llu\n",
              static_cast<unsigned long long>(eager.stats.slow_path_hits),
              static_cast<unsigned long long>(eager.stats.eager_sites_rewritten),
              static_cast<unsigned long long>(eager.stats.eager_sites_deferred));
  std::printf("  cross-checker (verified-eager run):\n%s",
              eager.checker->summary().c_str());
  if (failures == 0) std::printf("gate: PASS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "webserver";
  std::string json_path;
  bool want_listing = false;
  bool want_gate = false;
  bool use_dataflow = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workload=", 0) == 0) {
      workload_name = arg.substr(std::strlen("--workload="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--listing") {
      want_listing = true;
    } else if (arg == "--gate") {
      want_gate = true;
    } else if (arg == "--dataflow") {
      use_dataflow = true;
    } else if (arg == "--no-dataflow") {
      use_dataflow = false;
    } else {
      die("unknown flag '" + arg +
          "' (usage: analyze [--workload=NAME] [--json=PATH] [--listing] "
          "[--gate] [--dataflow|--no-dataflow])");
    }
  }

  const Workload workload = make_workload(workload_name);
  kern::Machine scratch;
  const isa::Program program = workload.build(scratch);
  const analysis::Analysis result =
      analysis::analyze(program.image, program.base, program.entry);

  std::printf("workload %s: %zu bytes of text, %zu candidate window(s)\n",
              workload_name.c_str(), program.image.size(),
              result.sites.size());
  std::printf("verdicts: %s\n", analysis::verdict_summary(result).c_str());
  std::printf("cfg: %zu reachable instruction(s), %zu basic block(s), "
              "%zu computed transfer(s)\n\n",
              result.cfg.reachable.size(), result.cfg.blocks.size(),
              result.cfg.computed_transfers.size());
  print_accuracy_table(program, result);

  // Syscall-number/argument resolution: the two-tier pipeline feeding the
  // policy subsystem (block-local idiom scan, then the interprocedural
  // value-flow analysis when --dataflow, the default).
  policy::ExtractOptions ex_opts;
  ex_opts.dataflow = use_dataflow;
  const policy::StaticExtraction ex = policy::extract_static(program, ex_opts);
  std::printf("\nsite resolution (%s): %zu/%zu sites resolved "
              "(%zu block-local + %zu value-flow), %zu predicated, "
              "wildcard=%s\n",
              use_dataflow ? "dataflow on" : "block-local only",
              ex.sites_resolved, ex.sites_total,
              ex.sites_resolved_blocklocal, ex.sites_resolved_dataflow,
              ex.predicated_sites, ex.used_wildcard ? "yes" : "no");
  if (use_dataflow) {
    const analysis::DataflowResult df =
        analysis::analyze_dataflow(result.cfg, program.entry);
    std::printf("dataflow: %zu block passes, %zu callee summaries "
                "(%zu conservative)\n",
                df.block_passes, df.callee_summaries, df.conservative_calls);
  }

  if (want_listing) {
    std::printf("\n%s", analysis::annotated_listing(result, program.image).c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << analysis::json_report(result, program.name) << "\n";
    if (!out) die("cannot write " + json_path);
    std::printf("\njson -> %s\n", json_path.c_str());
  }
  if (want_gate) return run_gate(workload_name, workload, result, program);
  return 0;
}
