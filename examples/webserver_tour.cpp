// Web server tour: run the nginx-profile event-loop server against the
// closed-loop client, natively and under lazypoline, and compare throughput —
// a miniature of the paper's Figure 5 at a single grid point, with the
// interposition statistics exposed.
//
// Build & run:  cmake --build build && ./build/examples/webserver_tour
#include <cstdio>

#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "kernel/machine.hpp"

using namespace lzp;

namespace {

struct RunOutcome {
  double rps = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t fast_path = 0;
};

RunOutcome serve(bool interposed, std::uint64_t file_size,
                 std::uint64_t requests) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  (void)machine.vfs().put_file_of_size("index.html", file_size);

  const auto profile = apps::nginx_profile();
  kern::ClientWorkload workload;
  workload.connections = 36;
  workload.total_requests = requests;
  workload.response_bytes = profile.header_bytes + file_size;
  const int listener = machine.net().create_listener(workload);

  auto program = apps::make_webserver(machine, profile, "index.html").value();
  machine.register_program(program);
  auto tid = machine.load(program).value();
  kern::FdEntry entry;
  entry.kind = kern::FdEntry::Kind::kListener;
  entry.net_id = listener;
  machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);

  std::shared_ptr<core::Lazypoline> runtime;
  if (interposed) {
    runtime = core::Lazypoline::create(machine, {});
    (void)runtime->install(machine, tid,
                           std::make_shared<interpose::DummyHandler>());
  }

  const auto stats = machine.run();
  RunOutcome outcome;
  if (!stats.all_exited) {
    std::fprintf(stderr, "server hung: %s\n", machine.last_fatal().c_str());
    return outcome;
  }
  const kern::Task* task = machine.find_task(tid);
  outcome.rps = static_cast<double>(requests) /
                (static_cast<double>(task->cycles) / 2.1e9);
  outcome.syscalls = task->syscalls_dispatched;
  if (runtime) {
    outcome.slow_path = runtime->stats().slow_path_hits;
    outcome.fast_path = runtime->stats().fast_path_hits();
  }
  return outcome;
}

}  // namespace

int main() {
  constexpr std::uint64_t kFileSize = 4096;
  constexpr std::uint64_t kRequests = 1000;

  std::printf("serving %llu requests of a %llu-byte file (nginx profile)\n\n",
              static_cast<unsigned long long>(kRequests),
              static_cast<unsigned long long>(kFileSize));

  const RunOutcome native = serve(false, kFileSize, kRequests);
  const RunOutcome lazy = serve(true, kFileSize, kRequests);

  std::printf("native:     %8.0f req/s  (%llu syscalls)\n", native.rps,
              static_cast<unsigned long long>(native.syscalls));
  std::printf("lazypoline: %8.0f req/s  (%.2f%% of native)\n", lazy.rps,
              100.0 * lazy.rps / native.rps);
  std::printf("\nlazypoline interposed every one of those syscalls:\n");
  std::printf("  slow path (first use of each site): %llu\n",
              static_cast<unsigned long long>(lazy.slow_path));
  std::printf("  fast path (rewritten sites):        %llu\n",
              static_cast<unsigned long long>(lazy.fast_path));
  std::printf("\nThe handful of slow-path hits amortize over the whole run —\n"
              "that is the paper's hybrid design working as intended.\n");
  return lazy.rps > 0.85 * native.rps ? 0 : 1;
}
