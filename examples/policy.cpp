// policy — the syscall-flow-integrity pipeline, end to end:
//
//   extraction (static CFG walk / dynamic trace learning)
//     -> lowering (per-state seccomp-BPF allowlists + SUD config)
//       -> enforcement (PolicyEnforcer under any of the four mechanisms).
//
//   ./build/examples/policy extract [workload]
//       Print the statically extracted automaton, the dynamically learned
//       one (webserver/getpid-loop run under lazypoline with a tracing
//       handler), and the containment/precision comparison.
//   ./build/examples/policy compile [workload]
//       Lower the static automaton: per-state filter sizes and the
//       SUD/lazypoline allowlist config.
//   ./build/examples/policy enforce [mechanism] [workload] [--verdict=V]
//       Run the workload under its own extracted policy on one mechanism
//       (V: deny | log | kill; default deny) and print enforcer stats.
//   ./build/examples/policy gate [--json]
//       Acceptance gate (scripts/check.sh): the webserver must run
//       violation-free under its extracted policy on all four mechanisms,
//       every adversarial-corpus program must be caught on all four, and
//       verdicts must agree across mechanisms. With dataflow on it also
//       gates full site resolution + zero wildcard edges, and with
//       minimization on it gates language preservation (contains both
//       ways) + minimized filter size <= the unminimized baseline.
//
//       workload:  webserver (default) | getpid-loop
//       mechanism: lazypoline (default) | sud | zpoline | ptrace
//
// Pipeline flags (all modes; every feature defaults ON):
//   --dataflow / --no-dataflow      value-flow site resolution (extract)
//   --predicates / --no-predicates  argument predicates on edges
//   --minimize / --no-minimize      automaton minimization before lowering
//
// Build & run:  cmake --build build && ./build/examples/policy gate
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/fuzz_programs.hpp"
#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "bpf/seccomp_filter.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "policy/compile.hpp"
#include "policy/enforce.hpp"
#include "policy/extract.hpp"
#include "zpoline/zpoline.hpp"

using namespace lzp;

namespace {

constexpr std::uint64_t kSeed = 0x1A5F'9E37ULL;
constexpr std::uint64_t kStepLimit = 400'000'000ULL;
const std::vector<std::string> kMechanisms = {"ptrace", "sud", "zpoline",
                                              "lazypoline"};

// The value-flow / predicate / minimization knobs, threaded through every
// mode so the gate can also exercise the degraded configurations.
struct PipelineOptions {
  policy::ExtractOptions extract;
  bool minimize = true;
};

// States whose follower set degraded to allow-all (plus the global
// from_any wildcard): the imprecision the value-flow analysis exists to
// eliminate on the webserver.
std::size_t wildcard_edge_count(const policy::Automaton& automaton) {
  std::size_t n = automaton.from_any().count(policy::kAnySyscall);
  for (const auto& [from, tos] : automaton.edges()) {
    n += tos.count(policy::kAnySyscall);
  }
  return n;
}

bool install(kern::Machine& machine, kern::Tid tid,
             const std::shared_ptr<interpose::SyscallHandler>& handler,
             const std::string& mechanism) {
  Status status;
  if (mechanism == "ptrace") {
    status = mechanisms::PtraceMechanism().install(machine, tid, handler);
  } else if (mechanism == "sud") {
    status = mechanisms::SudMechanism().install(machine, tid, handler);
  } else if (mechanism == "zpoline") {
    status = zpoline::ZpolineMechanism().install(machine, tid, handler);
  } else if (mechanism == "lazypoline") {
    auto runtime = core::Lazypoline::create(machine, {});
    status = runtime->install(machine, tid, handler);
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism.c_str());
    return false;
  }
  if (!status.is_ok()) {
    std::fprintf(stderr, "install %s: %s\n", mechanism.c_str(),
                 status.to_string().c_str());
    return false;
  }
  return true;
}

isa::Program make_getpid_loop() {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 50);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return std::move(isa::make_program("getpid-loop", a, entry)).value();
}

// Prepares `machine` for `workload` and returns the loaded program plus the
// tids to install a mechanism on. The caller owns the machine so it can also
// attach tracers/sinks before running.
struct Setup {
  isa::Program program;
  std::vector<kern::Tid> tids;
};

bool setup_workload(kern::Machine& machine, const std::string& workload,
                    Setup* out) {
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kSeed);
  if (workload == "getpid-loop") {
    out->program = make_getpid_loop();
    machine.register_program(out->program);
    auto tid = machine.load(out->program);
    if (!tid.is_ok()) return false;
    out->tids.push_back(tid.value());
    return true;
  }
  if (workload != "webserver") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return false;
  }
  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  if (!machine.vfs().put_file_of_size("index.html", kFileSize).is_ok()) {
    return false;
  }
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = 60;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);

  auto program = apps::make_webserver(machine, profile, "index.html");
  if (!program.is_ok()) {
    std::fprintf(stderr, "webserver: %s\n",
                 program.status().to_string().c_str());
    return false;
  }
  out->program = std::move(program).value();
  machine.register_program(out->program);
  for (int worker = 0; worker < 2; ++worker) {
    auto tid = machine.load(out->program);
    if (!tid.is_ok()) return false;
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
    out->tids.push_back(tid.value());
  }
  return true;
}

bool setup_adversarial(kern::Machine& machine, std::uint64_t seed,
                       Setup* out) {
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kSeed);
  out->program = analysis::make_adversarial_program(seed);
  machine.register_program(out->program);
  auto tid = machine.load(out->program);
  if (!tid.is_ok()) return false;
  out->tids.push_back(tid.value());
  return true;
}

// One traced (un-enforced) run: the dynamic-learning and profiling primitive.
struct TracedRun {
  bool completed = false;
  std::vector<std::pair<kern::Tid, std::uint64_t>> stream;
};

TracedRun run_traced(const std::string& workload_or_seed,
                     const std::string& mechanism,
                     std::uint64_t adversarial_seed = 0,
                     bool adversarial = false) {
  TracedRun out;
  kern::Machine machine;
  Setup setup;
  const bool ok = adversarial
                      ? setup_adversarial(machine, adversarial_seed, &setup)
                      : setup_workload(machine, workload_or_seed, &setup);
  if (!ok) return out;
  auto tracer = std::make_shared<interpose::TracingHandler>();
  for (const kern::Tid tid : setup.tids) {
    if (!install(machine, tid, tracer, mechanism)) return out;
  }
  const auto stats = machine.run(kStepLimit);
  out.completed = stats.all_exited;
  out.stream.reserve(tracer->trace().size());
  for (const interpose::TraceRecord& record : tracer->trace()) {
    out.stream.emplace_back(record.tid, record.nr);
  }
  return out;
}

struct EnforcedRun {
  bool completed = false;
  policy::EnforcerStats stats;
};

EnforcedRun run_enforced(const std::string& workload,
                         const std::string& mechanism,
                         const policy::Automaton& automaton,
                         policy::EnforcerOptions options,
                         std::uint64_t adversarial_seed = 0,
                         bool adversarial = false) {
  EnforcedRun out;
  kern::Machine machine;
  Setup setup;
  const bool ok = adversarial
                      ? setup_adversarial(machine, adversarial_seed, &setup)
                      : setup_workload(machine, workload, &setup);
  if (!ok) return out;
  auto enforcer = policy::PolicyEnforcer::create(automaton, options);
  if (!enforcer.is_ok()) {
    std::fprintf(stderr, "enforcer: %s\n",
                 enforcer.status().to_string().c_str());
    return out;
  }
  for (const kern::Tid tid : setup.tids) {
    if (!install(machine, tid, enforcer.value(), mechanism)) return out;
  }
  const auto stats = machine.run(kStepLimit);
  out.completed = stats.all_exited;
  out.stats = enforcer.value()->stats();
  return out;
}

void print_automaton(const char* heading, const policy::Automaton& automaton) {
  std::printf("--- %s: %zu states, %zu edges%s ---\n%s", heading,
              automaton.state_count(), automaton.edge_count(),
              automaton.has_wildcard() ? " (has wildcard)" : "",
              automaton.serialize().c_str());
}

struct Extracted {
  policy::StaticExtraction static_ex;
  policy::Automaton dynamic;
  bool dynamic_complete = false;
};

bool extract_both(const std::string& workload, const PipelineOptions& opts,
                  Extracted* out) {
  {
    kern::Machine machine;
    Setup setup;
    if (!setup_workload(machine, workload, &setup)) return false;
    out->static_ex = policy::extract_static(setup.program, opts.extract);
  }
  TracedRun traced = run_traced(workload, "lazypoline");
  if (!traced.completed) {
    std::fprintf(stderr, "dynamic-learning run did not complete\n");
    return false;
  }
  out->dynamic = policy::learn_from_sequence(traced.stream, workload);
  out->dynamic_complete = true;
  return true;
}

int cmd_extract(const std::string& workload, const PipelineOptions& opts) {
  Extracted ex;
  if (!extract_both(workload, opts, &ex)) return 1;
  std::printf("static extraction: %zu blocks, %zu syscall sites (%zu "
              "resolved: %zu block-local + %zu dataflow; %zu with argument "
              "constraints)\n",
              ex.static_ex.blocks, ex.static_ex.sites_total,
              ex.static_ex.sites_resolved,
              ex.static_ex.sites_resolved_blocklocal,
              ex.static_ex.sites_resolved_dataflow,
              ex.static_ex.predicated_sites);
  std::printf("wildcard edges: %zu, predicated edges: %zu\n\n",
              wildcard_edge_count(ex.static_ex.automaton),
              ex.static_ex.automaton.predicated_edge_count());
  print_automaton("static", ex.static_ex.automaton);
  if (opts.minimize) {
    const policy::MinimizeResult min =
        policy::minimize(ex.static_ex.automaton);
    std::printf("\nminimized: %zu -> %zu states (%zu behavior classes, %zu "
                "redundant edges dropped)\n",
                min.states_before, min.states_after, min.classes,
                min.edges_dropped);
  }
  std::printf("\n");
  print_automaton("dynamic", ex.dynamic);
  const bool contained = ex.static_ex.automaton.contains(ex.dynamic);
  std::printf("\nstatic contains dynamic: %s\n", contained ? "yes" : "NO");
  std::printf("precision: static %zu edges vs dynamic %zu edges (%zu "
              "over-approximated)\n",
              ex.static_ex.automaton.edge_count(), ex.dynamic.edge_count(),
              ex.static_ex.automaton.edge_count() >= ex.dynamic.edge_count()
                  ? ex.static_ex.automaton.edge_count() -
                        ex.dynamic.edge_count()
                  : 0);
  return contained ? 0 : 1;
}

int cmd_compile(const std::string& workload, const PipelineOptions& opts) {
  Extracted ex;
  if (!extract_both(workload, opts, &ex)) return 1;
  const std::uint32_t action =
      bpf::SECCOMP_RET_ERRNO | static_cast<std::uint32_t>(kern::kEPERM);

  // Unminimized baseline: the raw automaton, one program per state.
  policy::CompileOptions baseline_opts;
  baseline_opts.share_equivalent_states = false;
  baseline_opts.arg_predicates = opts.extract.arg_predicates;
  auto baseline = policy::compile_to_seccomp(ex.static_ex.automaton, action,
                                             baseline_opts);

  policy::Automaton lowered = ex.static_ex.automaton;
  if (opts.minimize) {
    const policy::MinimizeResult min = policy::minimize(lowered);
    lowered = min.automaton;
    std::printf("minimized %zu -> %zu states (%zu behavior classes, %zu "
                "redundant edges dropped)\n",
                min.states_before, min.states_after, min.classes,
                min.edges_dropped);
  }
  policy::CompileOptions compile_opts;
  compile_opts.share_equivalent_states = opts.minimize;
  compile_opts.arg_predicates = opts.extract.arg_predicates;
  auto compiled = policy::compile_to_seccomp(lowered, action, compile_opts);
  if (!compiled.is_ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().to_string().c_str());
    return 1;
  }
  std::printf("%zu states in %zu shared seccomp-BPF programs, %zu cBPF "
              "instructions total",
              compiled.value().state_count(), compiled.value().class_count(),
              compiled.value().total_filter_insns());
  if (baseline.is_ok()) {
    std::printf(" (unminimized baseline: %zu programs, %zu instructions)",
                baseline.value().class_count(),
                baseline.value().total_filter_insns());
  }
  std::printf("\n\n%-24s %7s %8s %10s %9s %s\n", "class", "members",
              "allowed", "predicated", "wildcard", "filter insns");
  for (const policy::StatePolicy& sp : compiled.value().classes) {
    const std::string label =
        sp.state == policy::kEntryState
            ? "entry"
            : std::string(kern::syscall_name(sp.state));
    std::printf("%-24s %7zu %8zu %10zu %9s %zu\n", label.c_str(),
                sp.members.size(), sp.allowed.size(), sp.predicated.size(),
                sp.wildcard ? "yes" : "no", sp.filter.size());
  }
  std::printf("\n--- SUD / lazypoline allowlist config ---\n%s",
              policy::sud_allowlist_config(lowered).c_str());
  return 0;
}

policy::EnforcerOptions options_for(const std::string& verdict) {
  policy::EnforcerOptions options;
  if (verdict == "log") {
    options.verdict = policy::Verdict::kLogOnly;
  } else if (verdict == "kill") {
    options.verdict = policy::Verdict::kKill;
  } else {
    options.verdict = policy::Verdict::kDenyErrno;
  }
  return options;
}

void print_stats(const policy::EnforcerStats& stats) {
  std::printf("transitions checked: %llu\n",
              static_cast<unsigned long long>(stats.transitions_checked));
  std::printf("violations:          %llu (denied %llu, killed %llu, logged "
              "%llu)\n",
              static_cast<unsigned long long>(stats.violations),
              static_cast<unsigned long long>(stats.denied),
              static_cast<unsigned long long>(stats.killed),
              static_cast<unsigned long long>(stats.logged));
  std::printf("wildcard allows:     %llu\n",
              static_cast<unsigned long long>(stats.wildcard_allows));
  std::printf("always-allow (exit): %llu\n",
              static_cast<unsigned long long>(stats.always_allows));
  std::printf("cBPF insns executed: %llu\n",
              static_cast<unsigned long long>(stats.bpf_insns_executed));
}

int cmd_enforce(const std::string& mechanism, const std::string& workload,
                const std::string& verdict, const PipelineOptions& opts) {
  Extracted ex;
  if (!extract_both(workload, opts, &ex)) return 1;
  policy::Automaton enforced = ex.static_ex.automaton;
  if (opts.minimize) enforced = policy::minimize(enforced).automaton;
  policy::EnforcerOptions enforcer_opts = options_for(verdict);
  enforcer_opts.compile.share_equivalent_states = opts.minimize;
  enforcer_opts.compile.arg_predicates = opts.extract.arg_predicates;
  const EnforcedRun run =
      run_enforced(workload, mechanism, enforced, enforcer_opts);
  std::printf("%s under %s, verdict %s:\n", workload.c_str(),
              mechanism.c_str(), verdict.c_str());
  std::printf("completed: %s\n", run.completed ? "yes" : "NO");
  print_stats(run.stats);
  return run.completed && run.stats.violations == 0 ? 0 : 1;
}

// --- the acceptance gate -----------------------------------------------------

int cmd_gate(bool json, const PipelineOptions& opts) {
  bool ok = true;
  std::string failures;
  auto fail = [&](const std::string& what) {
    ok = false;
    failures += "  FAIL: " + what + "\n";
  };

  // 1. Extraction + containment: the sound static automaton must contain
  //    everything the webserver actually did.
  Extracted ex;
  if (!extract_both("webserver", opts, &ex)) return 2;
  if (!ex.static_ex.automaton.contains(ex.dynamic)) {
    fail("static automaton does not contain the dynamically learned one");
  }

  // 1a. Precision gates (dataflow on): every webserver site must resolve —
  //     the value-flow analysis picks up what the block-local scan cannot —
  //     which leaves the automaton with zero wildcard edges.
  const std::size_t wildcard_edges =
      wildcard_edge_count(ex.static_ex.automaton);
  if (opts.extract.dataflow) {
    if (ex.static_ex.sites_resolved != ex.static_ex.sites_total) {
      fail("webserver: only " +
           std::to_string(ex.static_ex.sites_resolved) + " of " +
           std::to_string(ex.static_ex.sites_total) + " sites resolved");
    }
    if (wildcard_edges != 0) {
      fail("webserver automaton has " + std::to_string(wildcard_edges) +
           " wildcard edges (expected 0 with dataflow on)");
    }
  }

  // 1b. Minimization gates: the minimized automaton must accept exactly the
  //     same language (contains in both directions) and must lower to no
  //     more cBPF instructions than the unminimized one-program-per-state
  //     baseline.
  const std::uint32_t action =
      bpf::SECCOMP_RET_ERRNO | static_cast<std::uint32_t>(kern::kEPERM);
  policy::CompileOptions baseline_opts;
  baseline_opts.share_equivalent_states = false;
  baseline_opts.arg_predicates = opts.extract.arg_predicates;
  auto baseline =
      policy::compile_to_seccomp(ex.static_ex.automaton, action,
                                 baseline_opts);
  std::size_t insns_unminimized = 0;
  if (baseline.is_ok()) {
    insns_unminimized = baseline.value().total_filter_insns();
  } else {
    fail("unminimized compile failed: " + baseline.status().to_string());
  }
  policy::Automaton enforced = ex.static_ex.automaton;
  policy::MinimizeResult min;
  std::size_t insns_minimized = insns_unminimized;
  if (opts.minimize) {
    min = policy::minimize(ex.static_ex.automaton);
    if (!min.automaton.contains(ex.static_ex.automaton) ||
        !ex.static_ex.automaton.contains(min.automaton)) {
      fail("minimization changed the accepted language");
    }
    policy::CompileOptions min_opts;
    min_opts.arg_predicates = opts.extract.arg_predicates;
    auto min_compiled =
        policy::compile_to_seccomp(min.automaton, action, min_opts);
    if (!min_compiled.is_ok()) {
      fail("minimized compile failed: " + min_compiled.status().to_string());
    } else {
      insns_minimized = min_compiled.value().total_filter_insns();
      if (baseline.is_ok() && insns_minimized > insns_unminimized) {
        fail("minimized policy larger than baseline: " +
             std::to_string(insns_minimized) + " > " +
             std::to_string(insns_unminimized) + " cBPF instructions");
      }
    }
    enforced = min.automaton;
  }
  policy::EnforcerOptions enforcer_opts = options_for("deny");
  enforcer_opts.compile.share_equivalent_states = opts.minimize;
  enforcer_opts.compile.arg_predicates = opts.extract.arg_predicates;

  // 2. The webserver must run violation-free under its own extracted policy
  //    (deny verdict — a single false violation would break the workload)
  //    on all four mechanisms. Enforcement runs the minimized, predicated
  //    policy, so a false argument constraint or an over-merged state would
  //    surface right here as a violation.
  std::map<std::string, policy::EnforcerStats> self_stats;
  for (const std::string& mechanism : kMechanisms) {
    const EnforcedRun run =
        run_enforced("webserver", mechanism, enforced, enforcer_opts);
    self_stats[mechanism] = run.stats;
    if (!run.completed) fail("webserver hung under " + mechanism);
    if (run.stats.violations != 0) {
      fail("false violations under " + mechanism + " (" +
           std::to_string(run.stats.violations) + ")");
    }
    if (run.stats.transitions_checked == 0) {
      fail("enforcer saw no syscalls under " + mechanism);
    }
  }

  // 3. Adversarial corpus: profile seeds until 8 qualify — the program must
  //    complete with an identical syscall stream under all four mechanisms
  //    (so enforcement verdicts are comparable) and actually reach an
  //    off-policy syscall (getpid).
  std::vector<std::uint64_t> corpus;
  for (std::uint64_t seed = 1; seed <= 64 && corpus.size() < 8; ++seed) {
    TracedRun reference;
    bool qualified = true;
    for (const std::string& mechanism : kMechanisms) {
      TracedRun traced = run_traced("", mechanism, seed, /*adversarial=*/true);
      if (!traced.completed) {
        qualified = false;
        break;
      }
      if (mechanism == kMechanisms.front()) {
        reference = std::move(traced);
      } else if (traced.stream != reference.stream) {
        qualified = false;
        break;
      }
    }
    if (!qualified) continue;
    bool has_getpid = false;
    for (const auto& [tid, nr] : reference.stream) {
      if (nr == kern::kSysGetpid) has_getpid = true;
    }
    if (has_getpid) corpus.push_back(seed);
  }
  if (corpus.size() < 8) {
    fail("adversarial corpus: only " + std::to_string(corpus.size()) +
         " of 8 seeds qualified");
  }

  // 4. Every corpus program must be caught — at least one violation — under
  //    every mechanism, with identical violation counts across mechanisms.
  std::size_t caught = 0;
  for (const std::uint64_t seed : corpus) {
    std::uint64_t reference_violations = 0;
    bool first = true;
    bool seed_ok = true;
    for (const std::string& mechanism : kMechanisms) {
      const EnforcedRun run = run_enforced("", mechanism, enforced,
                                           enforcer_opts, seed,
                                           /*adversarial=*/true);
      if (!run.completed) {
        fail("adversarial seed " + std::to_string(seed) + " hung under " +
             mechanism);
        seed_ok = false;
        continue;
      }
      if (run.stats.violations == 0) {
        fail("adversarial seed " + std::to_string(seed) +
             " escaped the policy under " + mechanism);
        seed_ok = false;
      }
      if (first) {
        reference_violations = run.stats.violations;
        first = false;
      } else if (run.stats.violations != reference_violations) {
        fail("verdict mismatch for seed " + std::to_string(seed) + " under " +
             mechanism + ": " + std::to_string(run.stats.violations) +
             " violations vs " + std::to_string(reference_violations));
        seed_ok = false;
      }
    }
    if (seed_ok) ++caught;
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"ok\": %s,\n", ok ? "true" : "false");
    std::printf("  \"static_edges\": %zu,\n",
                ex.static_ex.automaton.edge_count());
    std::printf("  \"static_states\": %zu,\n",
                ex.static_ex.automaton.state_count());
    std::printf("  \"dynamic_edges\": %zu,\n", ex.dynamic.edge_count());
    std::printf("  \"dynamic_states\": %zu,\n", ex.dynamic.state_count());
    std::printf("  \"sites_total\": %zu,\n", ex.static_ex.sites_total);
    std::printf("  \"sites_resolved\": %zu,\n", ex.static_ex.sites_resolved);
    std::printf("  \"sites_resolved_blocklocal\": %zu,\n",
                ex.static_ex.sites_resolved_blocklocal);
    std::printf("  \"sites_resolved_dataflow\": %zu,\n",
                ex.static_ex.sites_resolved_dataflow);
    std::printf("  \"predicated_edges\": %zu,\n",
                ex.static_ex.automaton.predicated_edge_count());
    std::printf("  \"wildcard_edges\": %zu,\n", wildcard_edges);
    std::printf("  \"minimized_states\": %zu,\n",
                opts.minimize ? min.states_after
                              : ex.static_ex.automaton.state_count());
    std::printf("  \"insns_unminimized\": %zu,\n", insns_unminimized);
    std::printf("  \"insns_minimized\": %zu,\n", insns_minimized);
    std::printf("  \"contains_dynamic\": %s,\n",
                ex.static_ex.automaton.contains(ex.dynamic) ? "true"
                                                            : "false");
    std::printf("  \"corpus_size\": %zu,\n", corpus.size());
    std::printf("  \"corpus_caught\": %zu,\n", caught);
    std::printf("  \"mechanisms\": {");
    bool first_mech = true;
    for (const auto& [mechanism, stats] : self_stats) {
      std::printf("%s\n    \"%s\": {\"transitions\": %llu, \"violations\": "
                  "%llu}",
                  first_mech ? "" : ",", mechanism.c_str(),
                  static_cast<unsigned long long>(stats.transitions_checked),
                  static_cast<unsigned long long>(stats.violations));
      first_mech = false;
    }
    std::printf("\n  }\n}\n");
  } else {
    std::printf("webserver: static %zu edges / %zu states, dynamic %zu "
                "edges / %zu states, containment %s\n",
                ex.static_ex.automaton.edge_count(),
                ex.static_ex.automaton.state_count(),
                ex.dynamic.edge_count(), ex.dynamic.state_count(),
                ex.static_ex.automaton.contains(ex.dynamic) ? "ok" : "BROKEN");
    std::printf("sites: %zu/%zu resolved (%zu block-local + %zu dataflow), "
                "%zu wildcard edges, %zu predicated edges\n",
                ex.static_ex.sites_resolved, ex.static_ex.sites_total,
                ex.static_ex.sites_resolved_blocklocal,
                ex.static_ex.sites_resolved_dataflow, wildcard_edges,
                ex.static_ex.automaton.predicated_edge_count());
    std::printf("lowering: %zu cBPF insns minimized vs %zu unminimized\n",
                insns_minimized, insns_unminimized);
    for (const auto& [mechanism, stats] : self_stats) {
      std::printf("  %-10s %llu transitions, %llu violations\n",
                  mechanism.c_str(),
                  static_cast<unsigned long long>(stats.transitions_checked),
                  static_cast<unsigned long long>(stats.violations));
    }
    std::printf("adversarial corpus: %zu programs, %zu caught under all four "
                "mechanisms with matching verdicts\n",
                corpus.size(), caught);
    if (!ok) std::printf("%s", failures.c_str());
    std::printf("policy gate: %s\n", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool json = false;
  std::string verdict = "deny";
  PipelineOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--verdict=", 0) == 0) {
      verdict = arg.substr(10);
    } else if (arg == "--dataflow") {
      opts.extract.dataflow = true;
    } else if (arg == "--no-dataflow") {
      opts.extract.dataflow = false;
    } else if (arg == "--predicates") {
      opts.extract.arg_predicates = true;
    } else if (arg == "--no-predicates") {
      opts.extract.arg_predicates = false;
    } else if (arg == "--minimize") {
      opts.minimize = true;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else {
      positional.push_back(arg);
    }
  }
  const std::string mode = positional.empty() ? "gate" : positional[0];
  if (mode == "extract") {
    return cmd_extract(positional.size() > 1 ? positional[1] : "webserver",
                       opts);
  }
  if (mode == "compile") {
    return cmd_compile(positional.size() > 1 ? positional[1] : "webserver",
                       opts);
  }
  if (mode == "enforce") {
    return cmd_enforce(positional.size() > 1 ? positional[1] : "lazypoline",
                       positional.size() > 2 ? positional[2] : "webserver",
                       verdict, opts);
  }
  if (mode == "gate") return cmd_gate(json, opts);
  std::fprintf(stderr,
               "usage: policy [extract|compile|enforce|gate] ... (see header "
               "comment)\n");
  return 2;
}
