// minitrace — an strace-like CLI over the simulated machine: pick a guest
// workload and an interposition mechanism, get a syscall trace plus the
// mechanism's cost. Demonstrates swapping mechanisms behind the common
// SyscallHandler API.
//
//   ./build/examples/minitrace [mechanism] [workload]
//     mechanism: lazypoline (default) | sud | zpoline | ptrace | seccomp-user
//     workload:  getpid-loop (default) | jit | ls | webserver
//
// Build & run:  cmake --build build && ./build/examples/minitrace sud jit
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/coreutils.hpp"
#include "apps/jitcc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "kernel/machine.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/seccomp_user_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "zpoline/zpoline.hpp"

using namespace lzp;

namespace {

Result<isa::Program> build_workload(kern::Machine& machine,
                                    const std::string& name) {
  if (name == "getpid-loop") {
    isa::Assembler a;
    const auto entry = a.new_label();
    const auto loop = a.new_label();
    const auto done = a.new_label();
    a.bind(entry);
    a.mov(isa::Gpr::rbx, 5);
    a.bind(loop);
    a.cmp(isa::Gpr::rbx, 0);
    a.jz(done);
    a.mov(isa::Gpr::rax, kern::kSysGetpid);
    a.syscall_();
    a.sub(isa::Gpr::rbx, 1);
    a.jmp(loop);
    a.bind(done);
    apps::emit_exit(a, 0);
    return isa::make_program("getpid-loop", a, entry);
  }
  if (name == "jit") {
    const std::string src = apps::exhaustiveness_test_source();
    LZP_RETURN_IF_ERROR(machine.vfs().put_file(
        "prog.c", std::vector<std::uint8_t>(src.begin(), src.end())));
    auto runner = apps::make_jit_runner(machine, "prog.c");
    if (!runner) return runner.status();
    return std::move(runner).value().program;
  }
  if (name == "ls") {
    apps::populate_coreutil_fixtures(machine.vfs());
    return apps::make_coreutil("ls", apps::LibcProfile::kUbuntu2004);
  }
  if (name == "webserver") {
    LZP_RETURN_IF_ERROR(machine.vfs().put_file_of_size("index.html", 1024));
    kern::ClientWorkload workload;
    workload.total_requests = 3;
    workload.response_bytes = 160 + 1024;
    const int listener = machine.net().create_listener(workload);
    auto program = apps::make_webserver(machine, apps::nginx_profile(),
                                        "index.html");
    if (!program) return program.status();
    // The caller installs the listener fd after load; stash its id in the
    // program name-keyed side channel via a special registration.
    program.value().name = "webserver#" + std::to_string(listener);
    return program;
  }
  return make_error(StatusCode::kNotFound, "unknown workload: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mechanism = argc > 1 ? argv[1] : "lazypoline";
  const std::string workload = argc > 2 ? argv[2] : "getpid-loop";

  kern::Machine machine;
  machine.mmap_min_addr = 0;
  auto program = build_workload(machine, workload);
  if (!program.is_ok()) {
    std::fprintf(stderr, "minitrace: %s\n", program.status().to_string().c_str());
    std::fprintf(stderr,
                 "usage: minitrace [lazypoline|sud|zpoline|ptrace|seccomp-user]"
                 " [getpid-loop|jit|ls|webserver]\n");
    return 2;
  }
  machine.register_program(program.value());
  auto tid = machine.load(program.value());
  if (!tid.is_ok()) return 2;

  // Webserver workloads need the listener installed as fd 3.
  if (auto pos = program.value().name.find('#'); pos != std::string::npos) {
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = std::atoi(program.value().name.c_str() + pos + 1);
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
  }

  auto handler = std::make_shared<interpose::TracingHandler>();
  std::shared_ptr<core::Lazypoline> lazypoline;
  Status installed = Status::ok();
  if (mechanism == "lazypoline") {
    lazypoline = core::Lazypoline::create(machine, {});
    installed = lazypoline->install(machine, tid.value(), handler);
  } else if (mechanism == "sud") {
    mechanisms::SudMechanism m;
    installed = m.install(machine, tid.value(), handler);
  } else if (mechanism == "zpoline") {
    zpoline::ZpolineMechanism m;
    installed = m.install(machine, tid.value(), handler);
  } else if (mechanism == "ptrace") {
    mechanisms::PtraceMechanism m;
    installed = m.install(machine, tid.value(), handler);
  } else if (mechanism == "seccomp-user") {
    mechanisms::SeccompUserMechanism m;
    installed = m.install(machine, tid.value(), handler);
  } else {
    std::fprintf(stderr, "minitrace: unknown mechanism %s\n", mechanism.c_str());
    return 2;
  }
  if (!installed.is_ok()) {
    std::fprintf(stderr, "minitrace: install failed: %s\n",
                 installed.to_string().c_str());
    return 2;
  }

  const auto stats = machine.run();
  if (!stats.all_exited) {
    std::fprintf(stderr, "minitrace: guest hung: %s\n",
                 machine.last_fatal().c_str());
    return 1;
  }

  std::printf("minitrace: %s under %s\n", workload.c_str(), mechanism.c_str());
  for (const auto& record : handler->trace()) {
    std::printf("  [tid %u] %s\n", record.tid, record.to_string().c_str());
  }
  const kern::Task* task = machine.find_task(tid.value());
  std::printf("+++ exited with %d (%llu cycles, %llu syscalls dispatched) +++\n",
              task->exit_code, static_cast<unsigned long long>(task->cycles),
              static_cast<unsigned long long>(task->syscalls_dispatched));
  if (lazypoline) {
    std::printf("lazypoline: %llu slow-path, %llu fast-path, %llu rewrites\n",
                static_cast<unsigned long long>(lazypoline->stats().slow_path_hits),
                static_cast<unsigned long long>(lazypoline->stats().fast_path_hits()),
                static_cast<unsigned long long>(lazypoline->stats().sites_rewritten));
  }
  return 0;
}
