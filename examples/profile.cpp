// profile — the cycle-exact guest profiler front-end (src/profile). Runs a
// workload under one interposition mechanism with a Profiler attached as the
// machine's profile sink, prints the top-N hot-site table split by
// attribution class (guest code / interposer trampoline / kernel syscall
// cost / policy+record decorators), and writes the folded call stacks in
// flamegraph.pl input format:
//
//   ./build/examples/profile [mechanism] [--workload=W] [--folded=PATH]
//       mechanism:  lazypoline (default) | sud | zpoline | ptrace
//       --workload: webserver (default) | getpid-loop
//       --folded:   folded-stack output path (default profile.folded)
//       --top:      hot-site table rows (default 20)
//
//   flamegraph.pl profile.folded > profile.svg
//
// The run executes the workload twice — superblock engine on, then off — and
// verifies the profiler's per-class cycle totals sum to the machine's retired
// cycle counter EXACTLY in both configurations (the attribution-exactness
// invariant the profiler is built around). Exits non-zero if either run
// disagrees.
//
// Build & run:  cmake --build build && ./build/examples/profile
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "profile/profiler.hpp"
#include "zpoline/zpoline.hpp"

using namespace lzp;

namespace {

constexpr std::uint64_t kSeed = 0x1A5F'9E37ULL;

bool install(kern::Machine& machine, kern::Tid tid,
             const std::shared_ptr<interpose::SyscallHandler>& handler,
             const std::string& mechanism) {
  Status status;
  if (mechanism == "ptrace") {
    status = mechanisms::PtraceMechanism().install(machine, tid, handler);
  } else if (mechanism == "sud") {
    status = mechanisms::SudMechanism().install(machine, tid, handler);
  } else if (mechanism == "zpoline") {
    status = zpoline::ZpolineMechanism().install(machine, tid, handler);
  } else if (mechanism == "lazypoline") {
    auto runtime = core::Lazypoline::create(machine, {});
    status = runtime->install(machine, tid, handler);
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism.c_str());
    return false;
  }
  if (!status.is_ok()) {
    std::fprintf(stderr, "install %s: %s\n", mechanism.c_str(),
                 status.to_string().c_str());
    return false;
  }
  return true;
}

isa::Program make_getpid_loop() {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 50);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return std::move(isa::make_program("getpid-loop", a, entry)).value();
}

bool setup_workload(kern::Machine& machine, const std::string& workload,
                    isa::Program* program, std::vector<kern::Tid>* tids) {
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kSeed);
  if (workload == "getpid-loop") {
    *program = make_getpid_loop();
    machine.register_program(*program);
    auto tid = machine.load(*program);
    if (!tid.is_ok()) return false;
    tids->push_back(tid.value());
    return true;
  }
  if (workload != "webserver") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return false;
  }

  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  if (!machine.vfs().put_file_of_size("index.html", kFileSize).is_ok()) {
    return false;
  }
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = 60;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);

  auto built = apps::make_webserver(machine, profile, "index.html");
  if (!built.is_ok()) {
    std::fprintf(stderr, "webserver: %s\n", built.status().to_string().c_str());
    return false;
  }
  *program = std::move(built).value();
  machine.register_program(*program);
  for (int worker = 0; worker < 2; ++worker) {
    auto tid = machine.load(*program);
    if (!tid.is_ok()) return false;
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
    tids->push_back(tid.value());
  }
  return true;
}

struct ProfiledRun {
  bool ok = false;
  std::uint64_t machine_cycles = 0;
  std::uint64_t profiler_cycles = 0;
  std::string folded;
  std::string hot_sites;
};

ProfiledRun run_profiled(const std::string& mechanism,
                         const std::string& workload, bool block_engine,
                         std::size_t top_n) {
  profile::Profiler profiler;
  kern::Machine machine;
  machine.block_exec_enabled = block_engine;
  // Attach before load/install so arming-time charges (site rewrites,
  // selector setup) are attributed too — that is what makes the class sums
  // match total_cycles() from a fresh machine exactly.
  profiler.attach(machine);

  isa::Program program;
  std::vector<kern::Tid> tids;
  ProfiledRun out;
  if (!setup_workload(machine, workload, &program, &tids)) return out;
  profiler.register_symbol(program.base, program.image.size(),
                           program.name + ":code");

  auto handler = std::make_shared<interpose::DummyHandler>();
  for (const kern::Tid tid : tids) {
    if (!install(machine, tid, handler, mechanism)) return out;
  }

  const auto stats = machine.run(400'000'000ULL);
  if (!stats.all_exited) {
    std::fprintf(stderr, "workload hung: %s\n", machine.last_fatal().c_str());
    return out;
  }
  out.ok = true;
  out.machine_cycles = machine.total_cycles();
  out.profiler_cycles = profiler.total_cycles();
  out.folded = profiler.folded_stacks();
  out.hot_sites = profiler.render_hot_sites(top_n);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mechanism = "lazypoline";
  std::string workload = "webserver";
  std::string folded_path = "profile.folded";
  std::size_t top_n = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workload=", 0) == 0) {
      workload = arg.substr(11);
    } else if (arg.rfind("--folded=", 0) == 0) {
      folded_path = arg.substr(9);
    } else if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<std::size_t>(std::stoul(arg.substr(6)));
    } else {
      mechanism = arg;
    }
  }

  const ProfiledRun with_blocks =
      run_profiled(mechanism, workload, /*block_engine=*/true, top_n);
  if (!with_blocks.ok) return 1;
  const ProfiledRun stepped =
      run_profiled(mechanism, workload, /*block_engine=*/false, top_n);
  if (!stepped.ok) return 1;

  std::printf("== profile: %s under %s ==\n\n", workload.c_str(),
              mechanism.c_str());
  std::printf("-- hot sites (block engine on) --\n%s\n",
              with_blocks.hot_sites.c_str());

  // The invariant: every simulated cycle the machine retired is attributed
  // to exactly one class, under both execution engines.
  const struct {
    const char* engine;
    const ProfiledRun* r;
  } checks[] = {{"block", &with_blocks}, {"step", &stepped}};
  for (const auto& check : checks) {
    const bool exact = check.r->profiler_cycles == check.r->machine_cycles;
    std::printf("%s engine: machine %llu cycles, profiler %llu — %s\n",
                check.engine,
                static_cast<unsigned long long>(check.r->machine_cycles),
                static_cast<unsigned long long>(check.r->profiler_cycles),
                exact ? "exact" : "MISMATCH");
    if (!exact) {
      std::fprintf(stderr, "FAIL: attribution is not cycle-exact\n");
      return 1;
    }
  }

  std::ofstream out(folded_path);
  out << with_blocks.folded;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", folded_path.c_str());
    return 1;
  }
  std::printf("\nfolded stacks -> %s  "
              "(render: flamegraph.pl %s > profile.svg)\n",
              folded_path.c_str(), folded_path.c_str());
  return 0;
}
