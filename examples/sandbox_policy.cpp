// Sandbox example: deny opens of protected paths by *deep argument
// inspection* — the interposer dereferences the path pointer in guest
// memory, which a seccomp-bpf filter fundamentally cannot do (paper Table I,
// "Limited" expressiveness). Exhaustiveness matters here too: a sandbox that
// misses one syscall is bypassable (paper §VI), which is why the policy runs
// under lazypoline rather than a static rewriter.
//
// The path check composes with the syscall-flow-integrity layer
// (src/policy): the guest's automaton is extracted statically from its code
// and a PolicyEnforcer wraps the path handler, so a syscall must BOTH be a
// legal next step of the program's own syscall digraph AND pass the deep
// path inspection. Layered defenses: the automaton stops code-reuse that
// strays off the program's syscall order, the path check stops in-order
// calls with hostile arguments.
//
// Build & run:  cmake --build build && ./build/examples/sandbox_policy
#include <cstdio>

#include "apps/minilibc.hpp"
#include "core/lazypoline.hpp"
#include "kernel/machine.hpp"
#include "mechanisms/seccomp_bpf_tool.hpp"
#include "policy/enforce.hpp"
#include "policy/extract.hpp"

using namespace lzp;

int main() {
  // Guest: reads a public file, then tries the protected one; exits with
  // the number of successful opens.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t pub = apps::embed_string(a, "public/readme");
  const std::uint64_t secret = apps::embed_string(a, "secret/token");
  a.mov(isa::Gpr::r15, 0);  // success counter

  for (const std::uint64_t path : {pub, secret}) {
    a.mov(isa::Gpr::rdi, path);
    a.mov(isa::Gpr::rsi, 0);
    apps::emit_syscall(a, kern::kSysOpen);
    a.cmp(isa::Gpr::rax, 0);
    const auto failed = a.new_label();
    a.jlt(failed);
    a.add(isa::Gpr::r15, 1);
    a.bind(failed);
  }
  a.mov(isa::Gpr::rdi, isa::Gpr::r15);
  apps::emit_syscall(a, kern::kSysExitGroup);
  auto program = isa::make_program("sandboxed-guest", a, entry);
  if (!program.is_ok()) return 1;

  kern::Machine machine;
  machine.mmap_min_addr = 0;
  (void)machine.vfs().put_file("public/readme", {'o', 'k'});
  (void)machine.vfs().put_file("secret/token", {'k', 'e', 'y'});
  machine.register_program(program.value());
  auto tid = machine.load(program.value());

  // First, demonstrate that seccomp-bpf cannot host this policy at all.
  mechanisms::SeccompBpfMechanism bpf_mechanism;
  auto handler = std::make_shared<interpose::PathPolicyHandler>(
      std::vector<std::string>{"secret"});
  const Status bpf_attempt = bpf_mechanism.install(machine, tid.value(), handler);
  std::printf("seccomp-bpf install of the path policy: %s\n",
              bpf_attempt.to_string().c_str());

  // Layer the guest's own syscall-flow automaton over the path check: the
  // enforcer consults the automaton first, then hands allowed syscalls to
  // the path handler.
  const policy::StaticExtraction extraction =
      policy::extract_static(program.value());
  std::printf("\nextracted flow automaton (%zu states, %zu edges):\n%s\n",
              extraction.automaton.state_count(),
              extraction.automaton.edge_count(),
              extraction.automaton.serialize().c_str());
  auto enforcer =
      policy::PolicyEnforcer::create(extraction.automaton, {}, handler);
  if (!enforcer.is_ok()) {
    std::fprintf(stderr, "enforcer: %s\n",
                 enforcer.status().to_string().c_str());
    return 1;
  }

  // Now install the composed policy under lazypoline.
  auto lazypoline = core::Lazypoline::create(machine, {});
  if (!lazypoline->install(machine, tid.value(), enforcer.value()).is_ok()) {
    return 1;
  }

  const auto stats = machine.run();
  if (!stats.all_exited) return 1;

  const int successful_opens = machine.find_task(tid.value())->exit_code;
  std::printf("\nguest managed %d of 2 opens (the protected one was denied)\n",
              successful_opens);
  std::printf("path-policy denials: %llu\n",
              static_cast<unsigned long long>(handler->denials()));
  const policy::EnforcerStats flow = enforcer.value()->stats();
  std::printf("flow-integrity: %llu transitions checked, %llu violations "
              "(the guest stayed on its own automaton)\n",
              static_cast<unsigned long long>(flow.transitions_checked),
              static_cast<unsigned long long>(flow.violations));
  return successful_opens == 1 && handler->denials() == 1 &&
                 flow.transitions_checked > 0 && flow.violations == 0
             ? 0
             : 1;
}
