// Multi-variant execution (MVEE) monitor — use case (ii) from the paper's
// introduction: run two variants of a program and cross-check their syscall
// streams; any divergence indicates a compromised or faulty variant.
//
// This requires an interposer that is simultaneously:
//   * exhaustive — a variant that can smuggle even one unmonitored syscall
//     defeats the monitor (the paper's §VI point),
//   * expressive — the monitor compares numbers AND argument values,
//   * efficient — MVEEs run in production, doubling every syscall.
// lazypoline is the only non-intrusive mechanism offering all three.
//
// Build & run:  cmake --build build && ./build/examples/mvee_monitor
#include <cstdio>

#include "apps/minilibc.hpp"
#include "core/lazypoline.hpp"
#include "kernel/machine.hpp"

using namespace lzp;

namespace {

// Builds a variant: identical observable behaviour unless `compromised`,
// in which case it sneaks an extra open("secret") between two writes.
isa::Program make_variant(const std::string& name, bool compromised) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  apps::emit_print(a, "step one\n");
  if (compromised) {
    const std::uint64_t path = apps::embed_string(a, "secret");
    a.mov(isa::Gpr::rdi, path);
    a.mov(isa::Gpr::rsi, 0x40);  // O_CREAT: exfiltration channel
    apps::emit_syscall(a, kern::kSysOpen);
  }
  apps::emit_print(a, "step two\n");
  apps::emit_exit(a, 0);
  return isa::make_program(name, a, entry).value();
}

std::vector<interpose::TraceRecord> run_variant(const isa::Program& program) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto runtime = core::Lazypoline::create(machine, {});
  if (!runtime->install(machine, tid, handler).is_ok()) return {};
  (void)machine.run();
  return handler->trace();
}

// Lockstep comparison: numbers and the argument registers must agree.
int compare(const std::vector<interpose::TraceRecord>& a,
            const std::vector<interpose::TraceRecord>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].nr != b[i].nr || a[i].args != b[i].args) {
      return static_cast<int>(i);
    }
  }
  if (a.size() != b.size()) return static_cast<int>(n);
  return -1;
}

}  // namespace

int main() {
  const auto leader = run_variant(make_variant("variant-A", false));
  const auto follower_ok = run_variant(make_variant("variant-B", false));
  const auto follower_bad = run_variant(make_variant("variant-C", true));

  std::printf("leader issued %zu syscalls\n\n", leader.size());

  std::printf("A vs B (both healthy): ");
  int divergence = compare(leader, follower_ok);
  std::printf(divergence < 0 ? "LOCKSTEP OK\n" : "DIVERGENCE at %d\n",
              divergence);

  std::printf("A vs C (C compromised): ");
  divergence = compare(leader, follower_bad);
  if (divergence >= 0) {
    std::printf("DIVERGENCE at syscall %d — leader: %s, variant: %s\n",
                divergence,
                divergence < static_cast<int>(leader.size())
                    ? std::string(kern::syscall_name(leader[divergence].nr)).c_str()
                    : "<end>",
                divergence < static_cast<int>(follower_bad.size())
                    ? std::string(kern::syscall_name(follower_bad[divergence].nr)).c_str()
                    : "<end>");
    std::printf("monitor verdict: variant killed, incident reported.\n");
  } else {
    std::printf("LOCKSTEP OK (unexpected!)\n");
  }
  return divergence >= 0 ? 0 : 1;
}
