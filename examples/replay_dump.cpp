// replay_dump — record/replay front-end for the deterministic-replay
// subsystem (src/replay). Three modes:
//
//   ./build/examples/replay_dump --record out.trace [mechanism] [workload]
//       Record a workload under an interposition mechanism and save the
//       binary trace. mechanism: lazypoline (default) | sud | zpoline |
//       ptrace; workload: webserver (default) | getpid-loop.
//
//   ./build/examples/replay_dump out.trace
//       Dump a saved trace strace-style: one line per recorded syscall,
//       schedule slice, signal delivery, and nondeterministic input.
//
//   ./build/examples/replay_dump --replay out.trace
//       Re-execute the recording on a fresh machine (same mechanism, no
//       live network client) and report the replay verdict: every syscall
//       result injected or verified, every signal re-delivered at its
//       recorded instruction boundary — or the first divergence.
//
// Build & run:  cmake --build build && ./build/examples/replay_dump --record /tmp/ws.trace
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "zpoline/zpoline.hpp"

using namespace lzp;

namespace {

constexpr std::uint64_t kSeed = 0x1A5F'9E37ULL;

bool install(kern::Machine& machine, kern::Tid tid,
             const std::shared_ptr<interpose::SyscallHandler>& handler,
             const std::string& mechanism) {
  Status status;
  if (mechanism == "ptrace") {
    status = mechanisms::PtraceMechanism().install(machine, tid, handler);
  } else if (mechanism == "sud") {
    status = mechanisms::SudMechanism().install(machine, tid, handler);
  } else if (mechanism == "zpoline") {
    status = zpoline::ZpolineMechanism().install(machine, tid, handler);
  } else if (mechanism == "lazypoline") {
    auto runtime = core::Lazypoline::create(machine, {});
    status = runtime->install(machine, tid, handler);
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism.c_str());
    return false;
  }
  if (!status.is_ok()) {
    std::fprintf(stderr, "install %s: %s\n", mechanism.c_str(),
                 status.to_string().c_str());
    return false;
  }
  return true;
}

isa::Program make_getpid_loop() {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 50);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return std::move(isa::make_program("getpid-loop", a, entry)).value();
}

// Builds the recorded workload on `machine`. `live_client` drives real
// traffic at record time; at replay the trace supplies every payload.
bool setup_workload(kern::Machine& machine, const std::string& workload,
                    const std::string& mechanism,
                    const std::shared_ptr<interpose::SyscallHandler>& handler,
                    bool live_client) {
  machine.mmap_min_addr = 0;
  if (workload == "getpid-loop") {
    const auto program = make_getpid_loop();
    machine.register_program(program);
    auto tid = machine.load(program);
    if (!tid.is_ok()) return false;
    return install(machine, tid.value(), handler, mechanism);
  }
  if (workload != "webserver") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return false;
  }

  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  if (!machine.vfs().put_file_of_size("index.html", kFileSize).is_ok()) {
    return false;
  }
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = live_client ? 60 : 0;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);

  auto program = apps::make_webserver(machine, profile, "index.html");
  if (!program.is_ok()) {
    std::fprintf(stderr, "webserver: %s\n", program.status().to_string().c_str());
    return false;
  }
  machine.register_program(program.value());
  for (int worker = 0; worker < 2; ++worker) {
    auto tid = machine.load(program.value());
    if (!tid.is_ok()) return false;
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
    if (!install(machine, tid.value(), handler, mechanism)) return false;
  }
  return true;
}

int record(const std::string& path, const std::string& mechanism,
           const std::string& workload) {
  auto recorder = std::make_shared<replay::Recorder>();
  kern::Machine machine;
  recorder->attach(machine, kSeed, mechanism, workload);
  if (!setup_workload(machine, workload, mechanism, recorder,
                      /*live_client=*/true)) {
    return 1;
  }
  const auto stats = machine.run(400'000'000ULL);
  if (!stats.all_exited) {
    std::fprintf(stderr, "workload hung: %s\n", machine.last_fatal().c_str());
    return 1;
  }
  if (recorder->uncaptured_nondeterminism()) {
    for (const auto& line : recorder->audit_report()) {
      std::fprintf(stderr, "audit: %s\n", line.c_str());
    }
    return 1;
  }

  const replay::Trace& trace = recorder->trace();
  if (Status saved = trace.save(path); !saved.is_ok()) {
    std::fprintf(stderr, "save: %s\n", saved.to_string().c_str());
    return 1;
  }
  std::printf("recorded %s under %s: %zu events (%zu syscalls, %zu slices, "
              "%zu signals) in %llu machine steps -> %s\n",
              workload.c_str(), mechanism.c_str(), trace.events.size(),
              trace.syscall_count(),
              trace.count(replay::EventKind::kSchedule),
              trace.count(replay::EventKind::kSignal),
              static_cast<unsigned long long>(stats.insns), path.c_str());
  return 0;
}

int dump(const std::string& path) {
  auto trace = replay::Trace::load(path);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "load: %s\n", trace.status().to_string().c_str());
    return 1;
  }
  std::printf("# trace v%u  mechanism=%s  workload=%s  rng_seed=%#llx  "
              "events=%zu\n",
              trace.value().header.version,
              trace.value().header.mechanism.c_str(),
              trace.value().header.workload.c_str(),
              static_cast<unsigned long long>(trace.value().header.rng_seed),
              trace.value().events.size());
  for (const auto& event : trace.value().events) {
    std::printf("%s\n", replay::event_to_string(event).c_str());
  }
  return 0;
}

int replay_trace(const std::string& path) {
  auto trace = replay::Trace::load(path);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "load: %s\n", trace.status().to_string().c_str());
    return 1;
  }
  const std::string mechanism = trace.value().header.mechanism;
  const std::string workload = trace.value().header.workload;

  auto replayer =
      std::make_shared<replay::Replayer>(std::move(trace).value());
  kern::Machine machine;
  replayer->attach(machine);
  if (!setup_workload(machine, workload, mechanism, replayer,
                      /*live_client=*/false)) {
    return 1;
  }
  const auto stats = machine.run(400'000'000ULL);

  const auto& rs = replayer->stats();
  std::printf("replayed %s under %s: %llu syscalls injected, %llu executed "
              "+ verified, %llu signals re-delivered at recorded boundaries, "
              "%llu schedule slices, %llu bytes patched\n",
              workload.c_str(), mechanism.c_str(),
              static_cast<unsigned long long>(rs.syscalls_injected),
              static_cast<unsigned long long>(rs.syscalls_executed),
              static_cast<unsigned long long>(rs.signals_verified),
              static_cast<unsigned long long>(rs.slices_replayed),
              static_cast<unsigned long long>(rs.bytes_patched));
  if (replayer->diverged()) {
    std::printf("DIVERGED: %s\n", replayer->status().to_string().c_str());
    return 2;
  }
  if (!stats.all_exited || !replayer->finished()) {
    std::printf("INCOMPLETE: machine %s, trace %s\n",
                stats.all_exited ? "quiesced" : "did not quiesce",
                replayer->finished() ? "fully consumed" : "has unconsumed events");
    return 2;
  }
  std::printf("OK: deterministic replay, trace fully consumed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--record") == 0) {
    const std::string mechanism = argc > 3 ? argv[3] : "lazypoline";
    const std::string workload = argc > 4 ? argv[4] : "webserver";
    return record(argv[2], mechanism, workload);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--replay") == 0) {
    return replay_trace(argv[2]);
  }
  if (argc == 2 && argv[1][0] != '-') {
    return dump(argv[1]);
  }
  std::fprintf(stderr,
               "usage: %s --record <out.trace> [mechanism] [workload]\n"
               "       %s --replay <trace>\n"
               "       %s <trace>\n",
               argv[0], argv[0], argv[0]);
  return 1;
}
