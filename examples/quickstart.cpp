// Quickstart: interpose every syscall of a small program with lazypoline.
//
//   1. Create a Machine (the simulated Linux box) and allow VA-0 mappings.
//   2. Assemble and load a guest program.
//   3. Create the lazypoline runtime with a TracingHandler and install it.
//   4. Run; print the trace and the slow-path/fast-path statistics.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "apps/minilibc.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"

using namespace lzp;

int main() {
  // A guest that greets, asks for its pid three times, and exits.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  apps::emit_print(a, "hello from the guest!\n");
  // Ask for the pid 5 times from ONE call site: the first execution takes
  // the SIGSYS slow path (and rewrites the site); the rest take the
  // trampoline fast path.
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.mov(isa::Gpr::rbx, 5);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("quickstart-guest", a, entry);
  if (!program.is_ok()) {
    std::fprintf(stderr, "assemble failed: %s\n",
                 program.status().to_string().c_str());
    return 1;
  }

  kern::Machine machine;
  machine.mmap_min_addr = 0;  // the fast-path trampoline lives at VA 0
  machine.register_program(program.value());
  auto tid = machine.load(program.value());
  if (!tid.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", tid.status().to_string().c_str());
    return 1;
  }

  auto handler = std::make_shared<interpose::TracingHandler>();
  auto lazypoline = core::Lazypoline::create(machine, core::LazypolineConfig{});
  if (auto status = lazypoline->install(machine, tid.value(), handler);
      !status.is_ok()) {
    std::fprintf(stderr, "install failed: %s\n", status.to_string().c_str());
    return 1;
  }

  const auto stats = machine.run();
  if (!stats.all_exited) {
    std::fprintf(stderr, "guest did not finish: %s\n",
                 machine.last_fatal().c_str());
    return 1;
  }

  std::printf("guest console: %s",
              machine.find_task(tid.value())->process->console.c_str());
  std::printf("\nintercepted syscalls:\n");
  for (const auto& record : handler->trace()) {
    std::printf("  %s\n", record.to_string().c_str());
  }

  const auto& lp = lazypoline->stats();
  std::printf("\nlazypoline: %llu interpositions total — %llu first-use slow"
              " path (SIGSYS + rewrite), %llu fast path (trampoline)\n",
              static_cast<unsigned long long>(lp.entry_invocations),
              static_cast<unsigned long long>(lp.slow_path_hits),
              static_cast<unsigned long long>(lp.fast_path_hits()));
  std::printf("sites rewritten to CALL RAX: %llu\n",
              static_cast<unsigned long long>(lp.sites_rewritten));
  return 0;
}
