// trace_dump — the always-on tracing front-end (src/trace). Runs a workload
// under one interposition mechanism with a Tracer attached, prints the
// metrics-registry summary, and writes a Chrome trace-event JSON file that
// loads directly into Perfetto (ui.perfetto.dev) or chrome://tracing: one
// track per simulated task, one span per interposed syscall with the
// mechanism as its category, instants for site rewrites, SIGSYS deliveries,
// and selector flips.
//
//   ./build/examples/trace_dump [mechanism] [workload] [out.json] [--policy]
//       mechanism: lazypoline (default) | sud | zpoline | ptrace
//       workload:  webserver (default)  | getpid-loop
//       --policy:  enforce the workload's statically extracted syscall-flow
//                  automaton (src/policy) during the run — the summary then
//                  shows the per-state policy counter table, and after the
//                  run the flight-recorder ring is fed back into the dynamic
//                  learner to compare against the static automaton.
//
// Build & run:  cmake --build build && ./build/examples/trace_dump
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "policy/enforce.hpp"
#include "policy/extract.hpp"
#include "policy/from_flight_recorder.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "zpoline/zpoline.hpp"

using namespace lzp;

namespace {

constexpr std::uint64_t kSeed = 0x1A5F'9E37ULL;

bool install(kern::Machine& machine, kern::Tid tid,
             const std::shared_ptr<interpose::SyscallHandler>& handler,
             const std::string& mechanism) {
  Status status;
  if (mechanism == "ptrace") {
    status = mechanisms::PtraceMechanism().install(machine, tid, handler);
  } else if (mechanism == "sud") {
    status = mechanisms::SudMechanism().install(machine, tid, handler);
  } else if (mechanism == "zpoline") {
    status = zpoline::ZpolineMechanism().install(machine, tid, handler);
  } else if (mechanism == "lazypoline") {
    auto runtime = core::Lazypoline::create(machine, {});
    status = runtime->install(machine, tid, handler);
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism.c_str());
    return false;
  }
  if (!status.is_ok()) {
    std::fprintf(stderr, "install %s: %s\n", mechanism.c_str(),
                 status.to_string().c_str());
    return false;
  }
  return true;
}

isa::Program make_getpid_loop() {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 50);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return std::move(isa::make_program("getpid-loop", a, entry)).value();
}

// Prepares the machine and loads the workload; installation happens in main
// so the handler can be wrapped (e.g. in a PolicyEnforcer) once the loaded
// program — the automaton-extraction input — is known.
struct Setup {
  isa::Program program;
  std::vector<kern::Tid> tids;
};

bool setup_workload(kern::Machine& machine, const std::string& workload,
                    Setup* out) {
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kSeed);
  if (workload == "getpid-loop") {
    out->program = make_getpid_loop();
    machine.register_program(out->program);
    auto tid = machine.load(out->program);
    if (!tid.is_ok()) return false;
    out->tids.push_back(tid.value());
    return true;
  }
  if (workload != "webserver") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return false;
  }

  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  if (!machine.vfs().put_file_of_size("index.html", kFileSize).is_ok()) {
    return false;
  }
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = 60;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);

  auto program = apps::make_webserver(machine, profile, "index.html");
  if (!program.is_ok()) {
    std::fprintf(stderr, "webserver: %s\n", program.status().to_string().c_str());
    return false;
  }
  out->program = std::move(program).value();
  machine.register_program(out->program);
  for (int worker = 0; worker < 2; ++worker) {
    auto tid = machine.load(out->program);
    if (!tid.is_ok()) return false;
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
    out->tids.push_back(tid.value());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool policy_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--policy") {
      policy_mode = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  const std::string mechanism = positional.size() > 0 ? positional[0] : "lazypoline";
  const std::string workload = positional.size() > 1 ? positional[1] : "webserver";
  const std::string out_path = positional.size() > 2 ? positional[2] : "trace.json";

  trace::Tracer tracer;
  kern::Machine machine;
  // Attach before install so mechanism arming (selector writes, site
  // rewrites) lands in the trace too.
  tracer.attach(machine);

  Setup setup;
  if (!setup_workload(machine, workload, &setup)) return 1;

  std::shared_ptr<interpose::SyscallHandler> handler =
      std::make_shared<interpose::DummyHandler>();
  policy::StaticExtraction extraction;
  std::shared_ptr<policy::PolicyEnforcer> enforcer;
  if (policy_mode) {
    extraction = policy::extract_static(setup.program);
    auto created =
        policy::PolicyEnforcer::create(extraction.automaton, {}, handler);
    if (!created.is_ok()) {
      std::fprintf(stderr, "policy enforcer: %s\n",
                   created.status().to_string().c_str());
      return 1;
    }
    enforcer = created.value();
    handler = enforcer;
  }
  for (const kern::Tid tid : setup.tids) {
    if (!install(machine, tid, handler, mechanism)) return 1;
  }

  const auto stats = machine.run(400'000'000ULL);
  if (!stats.all_exited) {
    std::fprintf(stderr, "workload hung: %s\n", machine.last_fatal().c_str());
    return 1;
  }

  std::printf("%s under %s: %llu machine steps\n\n", workload.c_str(),
              mechanism.c_str(), static_cast<unsigned long long>(stats.insns));
  // The trace engine's lifetime totals have no per-event probe (only
  // invalidations do); fold them in so the counter table shows the chained
  // execution the run actually got.
  trace::record_trace_cache_stats(tracer.metrics(), machine.trace_cache_totals());
  std::printf("%s", trace::render_summary(tracer).c_str());

  if (policy_mode) {
    // Close the loop: the ring the tracer just filled is itself a dynamic
    // policy source. Learn from it and compare with the enforced (static)
    // automaton.
    const policy::Automaton learned =
        policy::learn_from_flight_recorder(tracer.ring(), workload);
    const policy::EnforcerStats pstats = enforcer->stats();
    std::printf("\n== policy pipeline ==\n");
    std::printf("enforced (static):  %zu states, %zu edges\n",
                extraction.automaton.state_count(),
                extraction.automaton.edge_count());
    std::printf("learned from ring:  %zu states, %zu edges (%llu events "
                "dropped by the ring)\n",
                learned.state_count(), learned.edge_count(),
                static_cast<unsigned long long>(tracer.ring().dropped()));
    std::printf("static contains learned: %s\n",
                extraction.automaton.contains(learned) ? "yes" : "NO");
    std::printf("enforcer: %llu transitions, %llu violations\n",
                static_cast<unsigned long long>(pstats.transitions_checked),
                static_cast<unsigned long long>(pstats.violations));
  }

  std::ofstream out(out_path);
  out << trace::export_chrome_json(tracer);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nperfetto json -> %s (load at ui.perfetto.dev)\n",
              out_path.c_str());
  return 0;
}
