// Superblock-engine throughput gate.
//
// Every workload here runs twice on otherwise-identical machines, differing
// only in `block_exec_enabled`: the per-instruction reference path (decode
// cache on — the baseline the speedup is measured against) vs the superblock
// engine. Two claims are enforced:
//   (1) determinism — simulated cycles, retired instructions, machine steps
//       and exit codes are bit-identical between the two configurations, for
//       the straight-line workload and for each interposition mechanism's
//       micro loop (native / SUD / zpoline / lazypoline);
//   (2) throughput — the engine runs the straight-line workload at least
//       kSpeedupGate x faster in host wall time (min-of-N to shed scheduler
//       noise).
// Results land in BENCH_block_exec.json for scripts/check.sh.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "bench_util.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;

constexpr std::uint64_t kStraightLineIters = 20'000;
constexpr int kUnroll = 24;  // arithmetic ops per loop body → long blocks
constexpr std::uint64_t kMicroIters = 2'000;
constexpr int kReps = 7;
constexpr double kSpeedupGate = 1.5;

// The throughput workload: a hot loop whose body is a long straight-line run
// of arithmetic, so nearly every retired instruction is eligible for batched
// dispatch (the loop branch ends each block).
isa::Program make_straight_line(std::uint64_t iterations) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.mov(isa::Gpr::rcx, 0);
  a.bind(loop);
  for (int i = 0; i < kUnroll; ++i) {
    a.add(isa::Gpr::rcx, static_cast<std::uint64_t>(i + 1));
  }
  a.sub(isa::Gpr::rbx, 1);
  a.cmp(isa::Gpr::rbx, 0);
  a.jnz(loop);
  apps::emit_exit(a, 0);
  return bench::unwrap(isa::make_program("block-straight-line", a, entry),
                       "assemble straight-line");
}

struct RunResult {
  double wall_ms = 1e18;  // min over kReps
  std::uint64_t cycles = 0;
  std::uint64_t insns = 0;
  std::uint64_t steps = 0;
  int exit_code = -1;
  cpu::BlockCacheStats bcache;
  cpu::DataTlbStats dtlb;
};

RunResult run_config(const isa::Program& program, bool engine_on,
                     const bench::Setup& setup) {
  RunResult result;
  for (int rep = 0; rep < kReps; ++rep) {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.block_exec_enabled = engine_on;
    machine.register_program(program);
    const kern::Tid tid = bench::unwrap(machine.load(program), "load");
    if (setup) setup(machine, tid);
    const auto start = std::chrono::steady_clock::now();
    const auto stats = machine.run();
    const auto end = std::chrono::steady_clock::now();
    if (!stats.all_exited) {
      bench::die("machine did not quiesce: " + machine.last_fatal());
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    result.wall_ms = std::min(result.wall_ms, ms);
    if (rep > 0 && result.cycles != machine.total_cycles()) {
      bench::die("simulated cycles varied between repetitions");
    }
    result.cycles = machine.total_cycles();
    result.insns = machine.total_insns();
    result.steps = machine.total_steps();
    result.exit_code = machine.find_task(tid)->exit_code;
    result.bcache = machine.block_cache_totals();
    result.dtlb = machine.data_tlb_totals();
  }
  return result;
}

// Dies unless the two configurations agree on every simulated observable.
void require_identical(const std::string& workload, const RunResult& ref,
                       const RunResult& block) {
  if (ref.cycles != block.cycles || ref.insns != block.insns ||
      ref.steps != block.steps || ref.exit_code != block.exit_code) {
    std::fprintf(stderr,
                 "FAIL: %s diverged between engines:\n"
                 "  reference: cycles=%llu insns=%llu steps=%llu exit=%d\n"
                 "  block:     cycles=%llu insns=%llu steps=%llu exit=%d\n",
                 workload.c_str(),
                 static_cast<unsigned long long>(ref.cycles),
                 static_cast<unsigned long long>(ref.insns),
                 static_cast<unsigned long long>(ref.steps), ref.exit_code,
                 static_cast<unsigned long long>(block.cycles),
                 static_cast<unsigned long long>(block.insns),
                 static_cast<unsigned long long>(block.steps),
                 block.exit_code);
    std::exit(1);
  }
}

std::string result_json(const std::string& workload, const std::string& config,
                        const RunResult& r, double speedup) {
  return metrics::JsonObject()
      .add("workload", workload)
      .add("config", config)
      .add("wall_ms", r.wall_ms)
      .add("speedup_x", speedup)
      .add("sim_cycles", r.cycles)
      .add("insns_retired", r.insns)
      .add("machine_steps", r.steps)
      .add("bcache_hits", r.bcache.hits)
      .add("bcache_misses", r.bcache.misses)
      .add("bcache_blocks_built", r.bcache.blocks_built)
      .add("bcache_invalidations", r.bcache.invalidations)
      .add("dtlb_read_hits", r.dtlb.read_hits)
      .add("dtlb_write_hits", r.dtlb.write_hits)
      .render();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliArgs cli = bench::parse_cli(argc, argv);
  const std::string json_path = cli.positional_or(0, "BENCH_block_exec.json");
  std::vector<std::string> results;

  // --- straight-line throughput + gate --------------------------------------
  const auto program = make_straight_line(kStraightLineIters);
  const RunResult ref = run_config(program, /*engine_on=*/false, nullptr);
  const RunResult blk = run_config(program, /*engine_on=*/true, nullptr);
  require_identical("straight-line", ref, blk);
  if (blk.bcache.hits == 0) {
    std::fprintf(stderr, "FAIL: engine-on run recorded no block-cache hits\n");
    return 1;
  }
  const double speedup = ref.wall_ms / blk.wall_ms;

  metrics::Table table(
      {"workload", "config", "wall ms (min)", "speedup", "sim cycles",
       "insns", "steps", "bcache hits"});
  table.add_row({"straight-line", "reference", format_double(ref.wall_ms, 3),
                 metrics::ratio(1.0), std::to_string(ref.cycles),
                 std::to_string(ref.insns), std::to_string(ref.steps),
                 std::to_string(ref.bcache.hits)});
  table.add_row({"straight-line", "block", format_double(blk.wall_ms, 3),
                 metrics::ratio(speedup), std::to_string(blk.cycles),
                 std::to_string(blk.insns), std::to_string(blk.steps),
                 std::to_string(blk.bcache.hits)});
  results.push_back(result_json("straight-line", "reference", ref, 1.0));
  results.push_back(result_json("straight-line", "block", blk, speedup));

  // --- per-mechanism micro-loop determinism ---------------------------------
  // The interposed paths bounce through host code and signals, exercising the
  // engine's fallback edges; each must be cycle-identical engine on vs off.
  const auto micro = bench::make_micro_loop(kMicroIters);
  auto dummy = std::make_shared<interpose::DummyHandler>();
  const struct {
    const char* name;
    bench::Setup setup;
  } mechanisms[] = {
      {"native", bench::setup_none()},
      {"sud", bench::setup_sud(dummy)},
      {"zpoline", bench::setup_zpoline(micro, dummy)},
      {"lazypoline",
       bench::setup_lazypoline(micro, dummy, core::XstateMode::kFull, true)},
  };
  for (const auto& mechanism : mechanisms) {
    const RunResult m_ref =
        run_config(micro, /*engine_on=*/false, mechanism.setup);
    const RunResult m_blk =
        run_config(micro, /*engine_on=*/true, mechanism.setup);
    require_identical(mechanism.name, m_ref, m_blk);
    const double mech_speedup = m_ref.wall_ms / m_blk.wall_ms;
    table.add_row({mechanism.name, "block", format_double(m_blk.wall_ms, 3),
                   metrics::ratio(mech_speedup), std::to_string(m_blk.cycles),
                   std::to_string(m_blk.insns), std::to_string(m_blk.steps),
                   std::to_string(m_blk.bcache.hits)});
    results.push_back(result_json(mechanism.name, "reference", m_ref, 1.0));
    results.push_back(
        result_json(mechanism.name, "block", m_blk, mech_speedup));
  }

  std::printf(
      "== Superblock engine (straight-line %llu iters x %d ops, min of %d) "
      "==\n%s\n",
      static_cast<unsigned long long>(kStraightLineIters), kUnroll, kReps,
      table.render().c_str());
  // Single-task microbenchmark: --cpus tags the artifact for comparability.
  bench::write_json_report(json_path, "block_exec", results, cli.cpus);

  if (speedup < kSpeedupGate) {
    std::fprintf(stderr,
                 "FAIL: superblock engine speedup %.3fx < %.2fx gate\n",
                 speedup, kSpeedupGate);
    return 1;
  }
  std::printf("PASS: straight-line speedup %.3fx >= %.2fx, all workloads "
              "cycle/step-identical across engines\n",
              speedup, kSpeedupGate);
  return 0;
}
