// Superblock + trace engine throughput gates.
//
// Every workload here runs on otherwise-identical machines differing only in
// the execution engine configuration:
//   reference — per-instruction stepping (decode cache on), the baseline;
//   block     — the superblock engine (block_exec_enabled);
//   trace     — superblocks chained into traces (trace_exec_enabled), with
//               the fused interposer fast path and the all-nop sled superop.
// Three claims are enforced:
//   (1) determinism — simulated cycles, retired instructions, machine steps
//       and exit codes are bit-identical across all three configurations,
//       for the straight-line workload, each interposition mechanism's micro
//       loop (native / SUD / zpoline / lazypoline), and the Figure-5
//       webserver under the same four mechanisms;
//   (2) block throughput — the superblock engine runs the straight-line
//       workload at least kBlockGate x faster than reference in host wall
//       time (min-of-N to shed scheduler noise);
//   (3) trace throughput — the trace engine runs the syscall-intensive
//       webserver at least kTraceGate x faster than the block engine under
//       zpoline and lazypoline, where each interposed syscall walks the
//       VA-0 nop sled that the trace engine executes as an O(1) superop.
// A fourth regression gate holds the SUD selector/stub page split: SUD must
// not invalidate cached blocks any more than zpoline does (the selector byte
// used to share the executable stub page, so every flip was an SMC event).
// Results land in BENCH_block_exec.json for scripts/check.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/webserver.hpp"
#include "base/strings.hpp"
#include "bench_util.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;

constexpr std::uint64_t kStraightLineIters = 20'000;
constexpr int kUnroll = 24;  // arithmetic ops per loop body → long blocks
constexpr std::uint64_t kMicroIters = 2'000;
constexpr std::uint64_t kWebRequests = 2'400;
constexpr std::uint64_t kWebFileSize = 4'096;
constexpr int kReps = 7;
constexpr int kWebReps = 3;
constexpr double kBlockGate = 1.5;
constexpr double kTraceGate = 2.0;

constexpr bool kTraceEngineBuilt =
#ifdef LZP_TRACE_EXEC_DISABLED
    false;
#else
    true;
#endif

struct EngineCfg {
  const char* name;
  bool block;
  bool trace;
};
constexpr EngineCfg kReference{"reference", false, false};
constexpr EngineCfg kBlock{"block", true, false};
constexpr EngineCfg kTrace{"trace", true, true};

// The throughput workload: a hot loop whose body is a long straight-line run
// of arithmetic, so nearly every retired instruction is eligible for batched
// dispatch (the loop branch ends each block).
isa::Program make_straight_line(std::uint64_t iterations) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.mov(isa::Gpr::rcx, 0);
  a.bind(loop);
  for (int i = 0; i < kUnroll; ++i) {
    a.add(isa::Gpr::rcx, static_cast<std::uint64_t>(i + 1));
  }
  a.sub(isa::Gpr::rbx, 1);
  a.cmp(isa::Gpr::rbx, 0);
  a.jnz(loop);
  apps::emit_exit(a, 0);
  return bench::unwrap(isa::make_program("block-straight-line", a, entry),
                       "assemble straight-line");
}

struct RunResult {
  double wall_ms = 1e18;  // min over reps
  std::uint64_t cycles = 0;
  std::uint64_t insns = 0;
  std::uint64_t steps = 0;
  int exit_code = -1;
  cpu::BlockCacheStats bcache;
  cpu::DataTlbStats dtlb;
  cpu::TraceCacheStats tcache;
};

RunResult run_config(const isa::Program& program, const EngineCfg& cfg,
                     const bench::Setup& setup) {
  RunResult result;
  for (int rep = 0; rep < kReps; ++rep) {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.block_exec_enabled = cfg.block;
    machine.trace_exec_enabled = cfg.trace;
    machine.register_program(program);
    const kern::Tid tid = bench::unwrap(machine.load(program), "load");
    if (setup) setup(machine, tid);
    const auto start = std::chrono::steady_clock::now();
    const auto stats = machine.run();
    const auto end = std::chrono::steady_clock::now();
    if (!stats.all_exited) {
      bench::die("machine did not quiesce: " + machine.last_fatal());
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    result.wall_ms = std::min(result.wall_ms, ms);
    if (rep > 0 && result.cycles != machine.total_cycles()) {
      bench::die("simulated cycles varied between repetitions");
    }
    result.cycles = machine.total_cycles();
    result.insns = machine.total_insns();
    result.steps = machine.total_steps();
    result.exit_code = machine.find_task(tid)->exit_code;
    result.bcache = machine.block_cache_totals();
    result.dtlb = machine.data_tlb_totals();
    result.tcache = machine.trace_cache_totals();
  }
  return result;
}

// The Figure-5 single-worker webserver: 36 keepalive connections, kRequests
// requests against a static file — the syscall-intensive macro workload the
// trace gate is measured on.
enum class Mech { kBaseline, kSud, kZpoline, kLazypoline };

void install_mech(kern::Machine& machine, kern::Tid tid, Mech mech,
                  const std::shared_ptr<interpose::DummyHandler>& dummy) {
  switch (mech) {
    case Mech::kBaseline:
      break;
    case Mech::kSud: {
      mechanisms::SudMechanism mechanism;
      bench::check(mechanism.install(machine, tid, dummy), "sud");
      break;
    }
    case Mech::kZpoline: {
      zpoline::ZpolineMechanism mechanism;
      bench::check(mechanism.install(machine, tid, dummy), "zpoline");
      break;
    }
    case Mech::kLazypoline: {
      core::LazypolineConfig config;
      config.xstate = core::XstateMode::kFull;
      auto runtime = core::Lazypoline::create(machine, config);
      bench::check(runtime->install(machine, tid, dummy), "lazypoline");
      break;
    }
  }
}

RunResult run_webserver(Mech mech, const EngineCfg& cfg) {
  RunResult result;
  const apps::ServerProfile& profile = apps::nginx_profile();
  for (int rep = 0; rep < kWebReps; ++rep) {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.block_exec_enabled = cfg.block;
    machine.trace_exec_enabled = cfg.trace;
    bench::check(machine.vfs().put_file_of_size("index.html", kWebFileSize),
                 "seed file");

    kern::ClientWorkload workload;
    workload.connections = 36;
    workload.total_requests = kWebRequests;
    workload.response_bytes = profile.header_bytes + kWebFileSize;
    const int listener = machine.net().create_listener(workload);

    const auto program = bench::unwrap(
        apps::make_webserver(machine, profile, "index.html"), "build server");
    machine.register_program(program);
    const kern::Tid tid = bench::unwrap(machine.load(program), "load worker");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    auto dummy = std::make_shared<interpose::DummyHandler>();
    install_mech(machine, tid, mech, dummy);

    const auto start = std::chrono::steady_clock::now();
    const auto stats = machine.run(4'000'000'000ULL);
    const auto end = std::chrono::steady_clock::now();
    if (!stats.all_exited) bench::die("server hung: " + machine.last_fatal());
    if (machine.net().completed_requests(listener) != kWebRequests) {
      bench::die("dropped requests");
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    result.wall_ms = std::min(result.wall_ms, ms);
    if (rep > 0 && result.cycles != machine.total_cycles()) {
      bench::die("simulated cycles varied between repetitions");
    }
    result.cycles = machine.total_cycles();
    result.insns = machine.total_insns();
    result.steps = machine.total_steps();
    result.exit_code = machine.find_task(tid)->exit_code;
    result.bcache = machine.block_cache_totals();
    result.dtlb = machine.data_tlb_totals();
    result.tcache = machine.trace_cache_totals();
  }
  return result;
}

// Dies unless every configuration agrees on every simulated observable.
void require_identical(const std::string& workload,
                       const std::vector<const RunResult*>& runs) {
  const RunResult& ref = *runs.front();
  for (const RunResult* run : runs) {
    if (ref.cycles != run->cycles || ref.insns != run->insns ||
        ref.steps != run->steps || ref.exit_code != run->exit_code) {
      std::fprintf(stderr,
                   "FAIL: %s diverged between engines:\n"
                   "  reference: cycles=%llu insns=%llu steps=%llu exit=%d\n"
                   "  other:     cycles=%llu insns=%llu steps=%llu exit=%d\n",
                   workload.c_str(),
                   static_cast<unsigned long long>(ref.cycles),
                   static_cast<unsigned long long>(ref.insns),
                   static_cast<unsigned long long>(ref.steps), ref.exit_code,
                   static_cast<unsigned long long>(run->cycles),
                   static_cast<unsigned long long>(run->insns),
                   static_cast<unsigned long long>(run->steps),
                   run->exit_code);
      std::exit(1);
    }
  }
}

std::string result_json(const std::string& workload, const std::string& config,
                        const RunResult& r, double speedup) {
  return metrics::JsonObject()
      .add("workload", workload)
      .add("config", config)
      .add("wall_ms", r.wall_ms)
      .add("speedup_x", speedup)
      .add("sim_cycles", r.cycles)
      .add("insns_retired", r.insns)
      .add("machine_steps", r.steps)
      .add("bcache_hits", r.bcache.hits)
      .add("bcache_misses", r.bcache.misses)
      .add("bcache_blocks_built", r.bcache.blocks_built)
      .add("bcache_invalidations", r.bcache.invalidations)
      .add("dtlb_read_hits", r.dtlb.read_hits)
      .add("dtlb_write_hits", r.dtlb.write_hits)
      .add("tcache_hits", r.tcache.hits)
      .add("tcache_traces_built", r.tcache.traces_built)
      .add("tcache_chain_follows", r.tcache.chain_follows)
      .add("tcache_side_exits", r.tcache.side_exits)
      .add("tcache_completions", r.tcache.completions)
      .add("tcache_resumes", r.tcache.resumes)
      .add("tcache_demotions", r.tcache.demotions)
      .add("tcache_invalidations", r.tcache.invalidations)
      .add("tcache_fused_fastpaths", r.tcache.fused_fastpaths)
      .render();
}

void add_row(metrics::Table& table, const std::string& workload,
             const EngineCfg& cfg, const RunResult& r, double speedup) {
  table.add_row({workload, cfg.name, format_double(r.wall_ms, 3),
                 metrics::ratio(speedup), std::to_string(r.cycles),
                 std::to_string(r.insns),
                 std::to_string(r.tcache.chain_follows),
                 std::to_string(r.tcache.fused_fastpaths)});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliArgs cli = bench::parse_cli(argc, argv);
  const std::string json_path = cli.positional_or(0, "BENCH_block_exec.json");
  std::vector<std::string> results;

  metrics::Table table({"workload", "config", "wall ms (min)", "speedup",
                        "sim cycles", "insns", "chains", "fused"});

  // --- straight-line throughput + block gate --------------------------------
  const auto program = make_straight_line(kStraightLineIters);
  const RunResult sl_ref = run_config(program, kReference, nullptr);
  const RunResult sl_blk = run_config(program, kBlock, nullptr);
  const RunResult sl_trc = run_config(program, kTrace, nullptr);
  require_identical("straight-line", {&sl_ref, &sl_blk, &sl_trc});
  if (sl_blk.bcache.hits == 0) {
    std::fprintf(stderr, "FAIL: engine-on run recorded no block-cache hits\n");
    return 1;
  }
  const double block_speedup = sl_ref.wall_ms / sl_blk.wall_ms;
  add_row(table, "straight-line", kReference, sl_ref, 1.0);
  add_row(table, "straight-line", kBlock, sl_blk, block_speedup);
  add_row(table, "straight-line", kTrace, sl_trc,
          sl_ref.wall_ms / sl_trc.wall_ms);
  results.push_back(result_json("straight-line", "reference", sl_ref, 1.0));
  results.push_back(
      result_json("straight-line", "block", sl_blk, block_speedup));
  results.push_back(result_json("straight-line", "trace", sl_trc,
                                sl_ref.wall_ms / sl_trc.wall_ms));

  // --- per-mechanism micro-loop determinism ---------------------------------
  // The interposed paths bounce through host code and signals, exercising the
  // engines' fallback edges; each must be cycle-identical across all three
  // configurations.
  const auto micro = bench::make_micro_loop(kMicroIters);
  auto dummy = std::make_shared<interpose::DummyHandler>();
  const struct {
    const char* name;
    bench::Setup setup;
  } mechanisms[] = {
      {"native", bench::setup_none()},
      {"sud", bench::setup_sud(dummy)},
      {"zpoline", bench::setup_zpoline(micro, dummy)},
      {"lazypoline",
       bench::setup_lazypoline(micro, dummy, core::XstateMode::kFull, true)},
  };
  for (const auto& mechanism : mechanisms) {
    const RunResult m_ref = run_config(micro, kReference, mechanism.setup);
    const RunResult m_blk = run_config(micro, kBlock, mechanism.setup);
    const RunResult m_trc = run_config(micro, kTrace, mechanism.setup);
    require_identical(mechanism.name, {&m_ref, &m_blk, &m_trc});
    add_row(table, mechanism.name, kBlock, m_blk,
            m_ref.wall_ms / m_blk.wall_ms);
    add_row(table, mechanism.name, kTrace, m_trc,
            m_ref.wall_ms / m_trc.wall_ms);
    results.push_back(result_json(mechanism.name, "reference", m_ref, 1.0));
    results.push_back(result_json(mechanism.name, "block", m_blk,
                                  m_ref.wall_ms / m_blk.wall_ms));
    results.push_back(result_json(mechanism.name, "trace", m_trc,
                                  m_ref.wall_ms / m_trc.wall_ms));
  }

  // --- webserver macro workload + trace gate --------------------------------
  metrics::Table wtable({"workload", "config", "wall ms (min)", "speedup",
                         "sim cycles", "insns", "chains", "fused"});
  const struct {
    const char* name;
    Mech mech;
  } web_mechs[] = {{"web-native", Mech::kBaseline},
                   {"web-sud", Mech::kSud},
                   {"web-zpoline", Mech::kZpoline},
                   {"web-lazypoline", Mech::kLazypoline}};
  double trace_gate_min = 1e18;
  std::uint64_t sud_invalidations = 0;
  std::uint64_t zpoline_invalidations = 0;
  std::uint64_t interposed_fused = 0;
  for (const auto& wm : web_mechs) {
    const RunResult w_ref = run_webserver(wm.mech, kReference);
    const RunResult w_blk = run_webserver(wm.mech, kBlock);
    const RunResult w_trc = run_webserver(wm.mech, kTrace);
    require_identical(wm.name, {&w_ref, &w_blk, &w_trc});
    const double vs_ref = w_ref.wall_ms / w_trc.wall_ms;
    const double vs_block = w_blk.wall_ms / w_trc.wall_ms;
    add_row(wtable, wm.name, kReference, w_ref, 1.0);
    add_row(wtable, wm.name, kBlock, w_blk, w_ref.wall_ms / w_blk.wall_ms);
    add_row(wtable, wm.name, kTrace, w_trc, vs_ref);
    results.push_back(result_json(wm.name, "reference", w_ref, 1.0));
    results.push_back(result_json(wm.name, "block", w_blk,
                                  w_ref.wall_ms / w_blk.wall_ms));
    results.push_back(result_json(wm.name, "trace", w_trc, vs_ref));
    if (wm.mech == Mech::kZpoline || wm.mech == Mech::kLazypoline) {
      trace_gate_min = std::min(trace_gate_min, vs_block);
      interposed_fused += w_trc.tcache.fused_fastpaths;
    }
    if (wm.mech == Mech::kSud) sud_invalidations = w_blk.bcache.invalidations;
    if (wm.mech == Mech::kZpoline) {
      zpoline_invalidations = w_blk.bcache.invalidations;
    }
  }

  std::printf(
      "== Execution engines (straight-line %llu iters x %d ops, min of %d) "
      "==\n%s\n",
      static_cast<unsigned long long>(kStraightLineIters), kUnroll, kReps,
      table.render().c_str());
  std::printf(
      "== Webserver macro workload (nginx, %llu requests, min of %d) ==\n%s\n",
      static_cast<unsigned long long>(kWebRequests), kWebReps,
      wtable.render().c_str());
  // Single-task microbenchmark: --cpus tags the artifact for comparability.
  bench::write_json_report(json_path, "block_exec", results, cli.cpus);

  bool ok = true;
  if (block_speedup < kBlockGate) {
    std::fprintf(stderr, "FAIL: superblock engine speedup %.3fx < %.2fx gate\n",
                 block_speedup, kBlockGate);
    ok = false;
  }
  // The SUD page-split regression gate: with the selector on its own RW page
  // a selector flip is no longer an SMC event, so SUD invalidates no more
  // cached blocks than zpoline (both only pay the install-time rewrites).
  if (sud_invalidations > zpoline_invalidations + 8) {
    std::fprintf(stderr,
                 "FAIL: SUD invalidated %llu cached blocks vs zpoline's %llu "
                 "(selector byte sharing the stub's executable page?)\n",
                 static_cast<unsigned long long>(sud_invalidations),
                 static_cast<unsigned long long>(zpoline_invalidations));
    ok = false;
  }
  if (kTraceEngineBuilt) {
    if (trace_gate_min < kTraceGate) {
      std::fprintf(stderr,
                   "FAIL: trace engine %.3fx over block engine on the "
                   "interposed webserver < %.2fx gate\n",
                   trace_gate_min, kTraceGate);
      ok = false;
    }
    if (interposed_fused == 0) {
      std::fprintf(stderr,
                   "FAIL: no fused interposer fast paths on the interposed "
                   "webserver\n");
      ok = false;
    }
  } else {
    std::printf("SKIP: trace gates (built with -DLZP_TRACE_EXEC=OFF)\n");
  }
  if (!ok) return 1;
  std::printf(
      "PASS: straight-line block speedup %.3fx >= %.2fx, webserver trace "
      "speedup %.3fx >= %.2fx over block, SUD invalidations at zpoline "
      "level, all workloads cycle/step-identical across engines\n",
      block_speedup, kBlockGate, kTraceEngineBuilt ? trace_gate_min : 0.0,
      kTraceGate);
  return 0;
}
