// Reproduces Table III: the Pin-style dynamic analysis over ten popular
// coreutils on two distributions, reporting which programs expect an
// extended state component to be preserved across at least one syscall.
//
// Paper result: on Ubuntu 20.04 (glibc 2.31) 4/10 utilities are affected,
// all by the same pthread-initialization idiom (Listing 1); on Clear Linux
// (glibc 2.39) every utility is affected by a single ptmalloc_init idiom.
#include <cstdio>

#include "apps/coreutils.hpp"
#include "bench_util.hpp"
#include "metrics/report.hpp"
#include "pintool/xstate_tracker.hpp"

namespace {
using namespace lzp;

struct CellResult {
  bool affected = false;
  std::size_t xstate_expectations = 0;
  std::string detail;
};

CellResult analyze(const std::string& name, apps::LibcProfile profile) {
  kern::Machine machine;
  apps::populate_coreutil_fixtures(machine.vfs());
  pintool::XstateTracker tracker;
  tracker.attach(machine);
  const auto program =
      bench::unwrap(apps::make_coreutil(name, profile), "build coreutil");
  (void)bench::unwrap(machine.load(program), "load coreutil");
  const auto stats = machine.run();
  if (!stats.all_exited) bench::die("coreutil hung: " + machine.last_fatal());

  CellResult cell;
  for (const auto& expectation : tracker.report().expectations) {
    if (expectation.cls == isa::RegClass::kGpr) continue;
    ++cell.xstate_expectations;
    cell.affected = true;
    if (cell.detail.empty()) cell.detail = expectation.to_string();
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("== Table III: coreutils under the xstate-liveness Pin tool ==\n");
  std::printf("(check = program expects an extended state component preserved\n"
              " across at least one syscall)\n\n");

  metrics::Table table({"Coreutils", "Ubuntu 20.04", "Clear Linux",
                        "first finding (Ubuntu or Clear)"});
  int ubuntu_affected = 0;
  for (const std::string& name : apps::coreutil_names()) {
    const CellResult ubuntu = analyze(name, apps::LibcProfile::kUbuntu2004);
    const CellResult clear = analyze(name, apps::LibcProfile::kClearLinux);
    ubuntu_affected += ubuntu.affected ? 1 : 0;
    table.add_row({name, ubuntu.affected ? "x (affected)" : "-",
                   clear.affected ? "x (affected)" : "-",
                   !ubuntu.detail.empty() ? ubuntu.detail : clear.detail});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Ubuntu 20.04: %d/10 affected (paper: 40%%, all via the Listing-1\n"
              "pthread initialization); Clear Linux: 10/10 affected (paper: all,\n"
              "via ptmalloc_init's xmm across getrandom).\n",
              ubuntu_affected);
  return 0;
}
