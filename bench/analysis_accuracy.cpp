// Accuracy + throughput gate for the static rewrite-safety analyzer.
//
// Runs the CFG analyzer and the two classic scanners (raw byte scan, linear
// sweep) over a corpus of randomized adversarial programs (0F 05 immediates,
// data islands, desync headers, jump-into-window gadgets — see
// analysis/fuzz_programs.hpp) and scores every strategy against assembler
// ground truth. Gates:
//
//   * soundness: ZERO SAFE false positives across the whole corpus — a
//     single one means the verified-eager rewriter would corrupt code;
//   * usefulness: the SAFE set is non-empty and strictly more precise than
//     the raw byte scan (fewer would-be-corrupting rewrites);
//   * bait coverage: the corpus actually makes the raw scan misfire, so the
//     soundness gate is not vacuous;
//   * throughput: analysis runs at >= 1 MB/s of text — eager verification
//     must stay negligible next to program load.
//
//   ./build/bench/analysis_accuracy [out.json]
//
// Emits an ASCII table plus a JSON summary (default BENCH_analysis.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/fuzz_programs.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "disasm/scanner.hpp"
#include "policy/extract.hpp"

namespace {
using namespace lzp;

constexpr std::uint64_t kCorpusSeed = 0xA11A;
constexpr int kCorpusSize = 40;
constexpr int kThroughputPasses = 50;
constexpr double kMinMbPerSec = 1.0;
constexpr std::uint64_t kPrecisionSeed = 0xDF01;
constexpr int kPerKind = 8;

// Records every interposed invocation with its site address for comparison
// against the static resolutions (the dynamic-falsification leg).
struct SiteRecorder final : interpose::SyscallHandler {
  struct Observation {
    std::uint64_t site = 0;
    std::uint64_t nr = 0;
    std::array<std::uint64_t, 6> args{};
  };
  std::vector<Observation> observations;

  std::uint64_t handle(interpose::InterposeContext& ctx) override {
    observations.push_back(
        {ctx.request().site, ctx.request().nr, ctx.request().args});
    return ctx.pass_through();
  }
  [[nodiscard]] std::string name() const override { return "site-recorder"; }
};

struct PrecisionTotals {
  std::size_t programs = 0;
  std::size_t sites_total = 0;
  std::size_t resolved_local = 0;     // dataflow OFF (block-local only)
  std::size_t resolved_dataflow = 0;  // dataflow ON (both tiers)
  std::size_t dataflow_only = 0;      // sites only the value-flow tier got
  std::size_t predicated_sites = 0;
  std::size_t observations = 0;
  std::size_t misresolutions = 0;     // dynamically falsified static claims
  std::size_t dominance_breaks = 0;   // local resolved a site dataflow lost
  std::size_t programs_without_crossblock = 0;
};

// One observed invocation against the static site table: the observed number
// must be a member of the site's resolved set and the observed argument
// words must satisfy every constraint of the site's clause.
bool observation_consistent(const policy::SiteResolution& site,
                            const SiteRecorder::Observation& obs) {
  if (!site.resolved()) return true;  // no claim to falsify
  if (site.nrs.count(obs.nr) == 0) return false;
  for (const policy::ArgConstraint& constraint : site.clause) {
    if (constraint.values.count(obs.args[constraint.arg]) == 0) return false;
  }
  return true;
}

void score_precision(const isa::Program& program, bool expect_predicates,
                     PrecisionTotals& totals) {
  policy::ExtractOptions local_only;
  local_only.dataflow = false;
  const policy::StaticExtraction local =
      policy::extract_static(program, local_only);
  const policy::StaticExtraction flow = policy::extract_static(program);

  ++totals.programs;
  totals.sites_total += flow.sites_total;
  totals.resolved_local += local.sites_resolved;
  totals.resolved_dataflow += flow.sites_resolved;
  totals.dataflow_only += flow.sites_resolved_dataflow;
  totals.predicated_sites += flow.predicated_sites;
  if (flow.sites_resolved_dataflow == 0) ++totals.programs_without_crossblock;
  if (expect_predicates && flow.predicated_sites == 0) {
    bench::die("no argument predicates extracted from " + program.name);
  }

  // Dominance: everything the local scan resolved, the two-tier pipeline
  // must resolve to the same set (the local tier runs first, so a break
  // here means the pipeline lost information).
  for (std::size_t i = 0; i < local.sites.size(); ++i) {
    if (!local.sites[i].resolved()) continue;
    if (i >= flow.sites.size() ||
        flow.sites[i].addr != local.sites[i].addr ||
        flow.sites[i].nrs != local.sites[i].nrs) {
      ++totals.dominance_breaks;
    }
  }

  // Dynamic falsification: run the program for real and check every
  // observed (site, nr, args) tuple against the static claims.
  auto recorder = std::make_shared<SiteRecorder>();
  bench::run_cycles(program, bench::setup_sud(recorder));
  for (const SiteRecorder::Observation& obs : recorder->observations) {
    if (obs.site == 0) continue;  // mechanism did not know the site
    ++totals.observations;
    bool found = false;
    for (const policy::SiteResolution& site : flow.sites) {
      if (site.addr != obs.site) continue;
      found = true;
      if (!observation_consistent(site, obs)) ++totals.misresolutions;
      break;
    }
    if (!found) ++totals.misresolutions;  // reachable site the CFG missed
  }
}

struct StrategyTotals {
  std::string name;
  std::size_t reported = 0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t missed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_analysis.json";

  Xoshiro256 seeder(kCorpusSeed);
  std::vector<isa::Program> corpus;
  corpus.reserve(kCorpusSize);
  std::size_t corpus_bytes = 0;
  for (int i = 0; i < kCorpusSize; ++i) {
    corpus.push_back(analysis::make_adversarial_program(seeder.next()));
    corpus_bytes += corpus.back().image.size();
  }

  StrategyTotals raw{"raw byte scan"};
  StrategyTotals sweep{"linear sweep"};
  StrategyTotals analyzer{"cfg analyzer (SAFE)"};
  std::size_t verdict_counts[analysis::kNumVerdicts] = {};
  std::vector<std::string> unsound_seeds;

  for (const isa::Program& program : corpus) {
    const auto score = [&](disasm::Strategy strategy, StrategyTotals& totals) {
      const auto scan = disasm::scan(program.image, program.base, strategy);
      const auto acc = disasm::evaluate(scan, program);
      totals.reported += scan.syscall_sites.size();
      totals.true_positives += acc.true_positives.size();
      totals.false_positives += acc.false_positives.size();
      totals.missed += acc.missed.size();
    };
    score(disasm::Strategy::kRawBytes, raw);
    score(disasm::Strategy::kLinearSweep, sweep);

    const auto result =
        analysis::analyze(program.image, program.base, program.entry);
    for (const auto& site : result.sites) {
      ++verdict_counts[static_cast<std::size_t>(site.verdict)];
    }
    const auto acc = analysis::evaluate(result, program);
    analyzer.reported += acc.safe_true.size() + acc.safe_false.size();
    analyzer.true_positives += acc.safe_true.size();
    analyzer.false_positives += acc.safe_false.size();
    analyzer.missed += acc.not_eager.size();
    if (!acc.sound()) unsound_seeds.push_back(program.name);
  }

  const auto start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kThroughputPasses; ++pass) {
    for (const isa::Program& program : corpus) {
      const auto result =
          analysis::analyze(program.image, program.base, program.entry);
      if (result.sites.empty() && !program.ground_truth.empty()) {
        bench::die("throughput pass produced an empty analysis");
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const double analyzed_bytes =
      static_cast<double>(corpus_bytes) * kThroughputPasses;
  const double mb_per_sec = analyzed_bytes / 1e6 / (seconds > 0 ? seconds : 1e-9);

  std::printf("corpus: %d programs, %zu bytes of text\n\n", kCorpusSize,
              corpus_bytes);
  std::printf("  %-22s %8s %8s %8s %8s\n", "strategy", "reported", "true+",
              "false+", "missed");
  for (const StrategyTotals* totals : {&raw, &sweep, &analyzer}) {
    std::printf("  %-22s %8zu %8zu %8zu %8zu\n", totals->name.c_str(),
                totals->reported, totals->true_positives,
                totals->false_positives, totals->missed);
  }
  std::printf("\nverdicts: safe=%zu jump=%zu overlap=%zu unknown=%zu\n",
              verdict_counts[0], verdict_counts[1], verdict_counts[2],
              verdict_counts[3]);
  std::printf("throughput: %.1f MB/s (%d passes, %.3fs)\n", mb_per_sec,
              kThroughputPasses, seconds);

  // --- extraction precision: block-local vs value-flow ----------------------
  PrecisionTotals precision;
  Xoshiro256 precision_seeder(kPrecisionSeed);
  for (int i = 0; i < kPerKind; ++i) {
    score_precision(
        analysis::make_cross_block_constant_program(precision_seeder.next()),
        /*expect_predicates=*/false, precision);
    score_precision(
        analysis::make_join_point_conflict_program(precision_seeder.next()),
        /*expect_predicates=*/false, precision);
    score_precision(
        analysis::make_arg_constant_program(precision_seeder.next()),
        /*expect_predicates=*/true, precision);
  }
  std::printf(
      "\nextraction precision (%zu cross-block programs, %zu sites):\n"
      "  block-local resolved %zu, with value-flow %zu (+%zu cross-block), "
      "%zu predicated sites\n"
      "  dynamic check: %zu observations, %zu misresolutions, "
      "%zu dominance breaks\n",
      precision.programs, precision.sites_total, precision.resolved_local,
      precision.resolved_dataflow, precision.dataflow_only,
      precision.predicated_sites, precision.observations,
      precision.misresolutions, precision.dominance_breaks);

  std::vector<std::string> rows;
  for (const StrategyTotals* totals : {&raw, &sweep, &analyzer}) {
    metrics::JsonObject row;
    row.add("strategy", totals->name);
    row.add("reported", static_cast<std::uint64_t>(totals->reported));
    row.add("true_positives", static_cast<std::uint64_t>(totals->true_positives));
    row.add("false_positives",
            static_cast<std::uint64_t>(totals->false_positives));
    row.add("missed", static_cast<std::uint64_t>(totals->missed));
    rows.push_back(row.render());
  }
  metrics::JsonObject flow;
  flow.add("strategy", "dataflow precision");
  flow.add("programs", static_cast<std::uint64_t>(precision.programs));
  flow.add("sites_total", static_cast<std::uint64_t>(precision.sites_total));
  flow.add("resolved_blocklocal",
           static_cast<std::uint64_t>(precision.resolved_local));
  flow.add("resolved_dataflow",
           static_cast<std::uint64_t>(precision.resolved_dataflow));
  flow.add("resolved_dataflow_only",
           static_cast<std::uint64_t>(precision.dataflow_only));
  flow.add("predicated_sites",
           static_cast<std::uint64_t>(precision.predicated_sites));
  flow.add("dynamic_observations",
           static_cast<std::uint64_t>(precision.observations));
  flow.add("misresolutions",
           static_cast<std::uint64_t>(precision.misresolutions));
  rows.push_back(flow.render());

  metrics::JsonObject perf;
  perf.add("strategy", "throughput");
  perf.add("corpus_programs", static_cast<std::uint64_t>(kCorpusSize));
  perf.add("corpus_bytes", static_cast<std::uint64_t>(corpus_bytes));
  perf.add("passes", static_cast<std::uint64_t>(kThroughputPasses));
  perf.add("seconds", seconds);
  perf.add("mb_per_sec", mb_per_sec);
  rows.push_back(perf.render());
  bench::write_json_report(out_path, "analysis_accuracy", rows);

  // --- gates ---------------------------------------------------------------
  if (!unsound_seeds.empty()) {
    std::string list;
    for (const auto& name : unsound_seeds) list += " " + name;
    bench::die("SAFE false positive(s) in:" + list);
  }
  if (analyzer.true_positives == 0) {
    bench::die("analyzer proved no site SAFE — corpus or analyzer broken");
  }
  if (raw.false_positives == 0) {
    bench::die("corpus produced no raw-scan false positives — baits missing");
  }
  if (analyzer.false_positives >= raw.false_positives) {
    bench::die("analyzer is not more precise than the raw byte scan");
  }
  if (mb_per_sec < kMinMbPerSec) {
    bench::die("analysis throughput below " + std::to_string(kMinMbPerSec) +
               " MB/s");
  }
  if (precision.misresolutions != 0) {
    bench::die("value-flow extraction made dynamically falsified claims");
  }
  if (precision.dominance_breaks != 0) {
    bench::die("two-tier resolution lost block-local resolutions");
  }
  if (precision.resolved_dataflow <= precision.resolved_local) {
    bench::die("value-flow analysis does not strictly dominate block-local");
  }
  if (precision.programs_without_crossblock != 0) {
    bench::die("a cross-block corpus program had no dataflow-resolved site");
  }
  std::printf("\nanalysis_accuracy: all gates passed\n");
  return 0;
}
