// Ablation benches for the design choices DESIGN.md calls out:
//
//   A. xstate preservation granularity (none / SSE / SSE+AVX / full) — the
//      §IV-B configurable option, quantifying what each component costs.
//   B. SUD deployment style: lazypoline's selector-only redirection vs the
//      typical handle-in-SIGSYS + allowlisted-sigreturn deployment, per
//      interception.
//   C. Hybrid vs pure-SUD vs pure-static on a JIT workload: coverage AND
//      aggregate cost (why the hybrid design is necessary).
//   D. Static scan strategy risk: raw-byte vs linear-sweep false positives /
//      misses on hostile-but-legal code, vs lazypoline's kernel-verified
//      discovery.
//   E. nop-sled entry depth: fast-path cost as a function of the syscall
//      number under a pessimistic 1-cycle-per-nop core (zpoline's design
//      accepts this; modern cores hide it).
#include <algorithm>
#include <cstdio>

#include "apps/jitcc.hpp"
#include "bench_util.hpp"
#include "apps/webserver.hpp"
#include "disasm/scanner.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;

void ablation_xstate() {
  std::printf("-- Ablation A: xstate preservation granularity --\n");
  const auto program = bench::make_micro_loop(20'000);
  auto dummy = std::make_shared<interpose::DummyHandler>();
  const double baseline =
      static_cast<double>(bench::run_cycles(program, bench::setup_none()));

  metrics::Table table({"Mode", "Overhead", "Preserves"});
  const std::pair<core::XstateMode, const char*> modes[] = {
      {core::XstateMode::kNone, "GPRs only (breaks Listing-1 code)"},
      {core::XstateMode::kSse, "+ XMM (fixes both Table-III idioms)"},
      {core::XstateMode::kSseAvx, "+ YMM upper lanes"},
      {core::XstateMode::kFull, "+ legacy x87 (fully ABI-compliant)"},
  };
  for (const auto& [mode, what] : modes) {
    const double cycles = static_cast<double>(bench::run_cycles(
        program, bench::setup_lazypoline(program, dummy, mode, true)));
    table.add_row({std::string(core::to_string(mode)),
                   metrics::ratio(cycles / baseline), what});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_sud_style() {
  std::printf("-- Ablation B: SUD deployment style, cost per interception --\n");
  const std::uint64_t iterations = 5'000;
  const auto program = bench::make_micro_loop(iterations);
  auto dummy = std::make_shared<interpose::DummyHandler>();
  const double baseline =
      static_cast<double>(bench::run_cycles(program, bench::setup_none()));

  // Typical deployment: handle inside the SIGSYS handler, sigreturn through
  // an allowlisted stub.
  const double typical = static_cast<double>(
      bench::run_cycles(program, bench::setup_sud(dummy)));
  // lazypoline's selector-only slow path, forced permanent (rewriting off):
  // redirect out of the handler, shared entry, no allowlisted range.
  const double selector_only = static_cast<double>(bench::run_cycles(
      program, [&](kern::Machine& machine, kern::Tid tid) {
        machine.register_program(program);
        core::LazypolineConfig config;
        config.rewrite_to_fast_path = false;  // every syscall via SIGSYS
        config.xstate = core::XstateMode::kNone;
        auto runtime = core::Lazypoline::create(machine, config);
        bench::check(runtime->install(machine, tid, dummy), "install");
      }));

  metrics::Table table({"Style", "Overhead vs baseline", "Notes"});
  table.add_row({"typical (allowlisted sigreturn)",
                 metrics::ratio(typical / baseline),
                 "attackers can jump to the allowlisted syscall"});
  table.add_row({"selector-only + redirect (lazypoline slow path)",
                 metrics::ratio(selector_only / baseline),
                 "no exempt code range; one shared entry for both paths"});
  std::printf("%s\n", table.render().c_str());
}

void ablation_hybrid() {
  std::printf("-- Ablation C: hybrid vs pure-SUD vs pure-static (JIT "
              "workload, 300 post-JIT syscalls) --\n");
  // A JIT program whose generated main performs many getpid calls: the
  // discovery cost amortizes only in the hybrid design.
  const std::string src = R"(
    int main() {
      int i = 0;
      int last = 0;
      while (i < 300) {
        last = syscall1(39, 0);
        i = i + 1;
      }
      return last;
    })";

  struct Variant {
    const char* name;
    bool rewrite;
    bool use_sud;
    bool use_zpoline;
  };
  const Variant variants[] = {
      {"zpoline (pure static)", false, false, true},
      {"pure SUD (no rewriting)", false, true, false},
      {"lazypoline (hybrid)", true, true, false},
  };

  metrics::Table table({"Design", "Cycles", "JIT syscalls interposed",
                        "slow-path hits"});
  for (const Variant& variant : variants) {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    bench::check(machine.vfs().put_file(
                     "p.c", std::vector<std::uint8_t>(src.begin(), src.end())),
                 "seed");
    const auto runner =
        bench::unwrap(apps::make_jit_runner(machine, "p.c"), "runner");
    machine.register_program(runner.program);
    const kern::Tid tid = bench::unwrap(machine.load(runner.program), "load");
    auto handler = std::make_shared<interpose::TracingHandler>();

    std::shared_ptr<core::Lazypoline> runtime;
    if (variant.use_zpoline) {
      zpoline::ZpolineMechanism mechanism;
      bench::check(mechanism.install(machine, tid, handler), "zpoline");
    } else {
      core::LazypolineConfig config;
      config.rewrite_to_fast_path = variant.rewrite;
      config.xstate = core::XstateMode::kNone;
      runtime = core::Lazypoline::create(machine, config);
      bench::check(runtime->install(machine, tid, handler), "lazypoline");
    }
    const auto stats = machine.run();
    if (!stats.all_exited) bench::die("hung: " + machine.last_fatal());

    const auto numbers = handler->traced_numbers();
    const auto jit_hits = std::count(numbers.begin(), numbers.end(),
                                     std::uint64_t{kern::kSysGetpid});
    table.add_row({variant.name,
                   std::to_string(machine.find_task(tid)->cycles),
                   std::to_string(jit_hits) + "/300",
                   runtime ? std::to_string(runtime->stats().slow_path_hits)
                           : "n/a"});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_scan_risk() {
  std::printf("-- Ablation D: static identification risk vs kernel-verified "
              "discovery --\n");
  // Hostile-but-legal code: a real syscall, a syscall byte pattern inside an
  // immediate, and a data blob that desyncs linear sweeps.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 0x0000'0000'0000'050FULL);  // fake pattern in imm
  const auto after = a.new_label();
  a.jmp(after);
  a.db({0xB8, 0x00});  // data resembling a MOV header
  a.syscall_();        // real site hidden from desynced sweeps
  a.nops(6);
  a.bind(after);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();        // plainly visible real site
  apps::emit_exit(a, 0);
  const auto program =
      bench::unwrap(isa::make_program("hostile", a, entry), "assemble");

  metrics::Table table(
      {"Identification", "true sites found", "false positives", "missed"});
  for (auto strategy : {disasm::Strategy::kRawBytes,
                        disasm::Strategy::kLinearSweep}) {
    const auto result = disasm::scan(program.image, program.base, strategy);
    const auto accuracy = disasm::evaluate(result, program);
    table.add_row({strategy == disasm::Strategy::kRawBytes ? "raw byte scan"
                                                            : "linear sweep",
                   std::to_string(accuracy.true_positives.size()),
                   std::to_string(accuracy.false_positives.size()),
                   std::to_string(accuracy.missed.size())});
  }
  // lazypoline: the kernel reports each site at first use — by construction
  // 0 false positives, 0 misses among *executed* sites.
  table.add_row({"kernel-verified (lazypoline slow path)", "all executed",
                 "0 by construction", "0 by construction"});
  std::printf("%s\n", table.render().c_str());
}

void ablation_sled_depth() {
  std::printf("-- Ablation E: nop-sled entry depth (pessimistic 1 cycle/nop "
              "core) --\n");
  kern::CostModel pessimistic;
  pessimistic.insn_nop = 1;  // no superscalar nop elimination
  auto dummy = std::make_shared<interpose::DummyHandler>();

  metrics::Series series("syscall nr", {"cycles/syscall (deep sled)",
                                        "cycles/syscall (nops free)"});
  const std::uint64_t iterations = 2'000;
  for (std::uint64_t nr : {0ULL, 100ULL, 250ULL, 400ULL, 500ULL}) {
    const auto program = bench::make_micro_loop(iterations, nr);
    const auto setup = bench::setup_lazypoline(
        program, dummy, core::XstateMode::kNone, true);
    const double deep = static_cast<double>(
        bench::run_cycles(program, setup, pessimistic));
    const double free_nops =
        static_cast<double>(bench::run_cycles(program, setup));
    series.add_point(std::to_string(nr),
                     {deep / iterations, free_nops / iterations}, 1);
  }
  std::printf("%s\n", series.render().c_str());
  std::printf("The paper's microbenchmark uses nr=500 precisely so the sled\n"
              "is entered at its very tail, minimizing zpoline's cost.\n\n");
}


void ablation_worker_model() {
  std::printf("-- Ablation F: worker model under lazypoline (4 workers, 400 "
              "requests) --\n");
  const std::uint64_t requests = 400;

  auto run_threads = [&]() {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    bench::check(machine.vfs().put_file_of_size("index.html", 2048), "seed");
    kern::ClientWorkload workload;
    workload.connections = 12;
    workload.total_requests = requests;
    workload.response_bytes = apps::nginx_profile().header_bytes + 2048;
    const int listener = machine.net().create_listener(workload);
    auto program = bench::unwrap(
        apps::make_threaded_webserver(machine, apps::nginx_profile(),
                                      "index.html", 4),
        "threaded server");
    machine.register_program(program);
    const kern::Tid tid = bench::unwrap(machine.load(program), "load");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    auto runtime = core::Lazypoline::create(machine, {});
    bench::check(runtime->install(machine, tid,
                                  std::make_shared<interpose::DummyHandler>()),
                 "install");
    const auto stats = machine.run();
    if (!stats.all_exited) bench::die("threads hung: " + machine.last_fatal());
    return runtime->stats().slow_path_hits;
  };

  auto run_processes = [&]() {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    bench::check(machine.vfs().put_file_of_size("index.html", 2048), "seed");
    kern::ClientWorkload workload;
    workload.connections = 12;
    workload.total_requests = requests;
    workload.response_bytes = apps::nginx_profile().header_bytes + 2048;
    const int listener = machine.net().create_listener(workload);
    auto program = bench::unwrap(
        apps::make_webserver(machine, apps::nginx_profile(), "index.html"),
        "server");
    machine.register_program(program);
    auto runtime = core::Lazypoline::create(machine, {});
    for (int w = 0; w < 4; ++w) {
      const kern::Tid tid = bench::unwrap(machine.load(program), "load");
      kern::FdEntry entry;
      entry.kind = kern::FdEntry::Kind::kListener;
      entry.net_id = listener;
      machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
      bench::check(
          runtime->install(machine, tid,
                           std::make_shared<interpose::DummyHandler>()),
          "install");
    }
    const auto stats = machine.run();
    if (!stats.all_exited) bench::die("procs hung: " + machine.last_fatal());
    return runtime->stats().slow_path_hits;
  };

  metrics::Table table({"Worker model", "slow-path discoveries", "why"});
  table.add_row({"4 threads (CLONE_VM)", std::to_string(run_threads()),
                 "shared text: each site rewritten once for everyone"});
  table.add_row({"4 processes", std::to_string(run_processes()),
                 "separate address spaces rediscover every site"});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("== Design ablations ==\n\n");
  ablation_xstate();
  ablation_sud_style();
  ablation_hybrid();
  ablation_scan_risk();
  ablation_sled_depth();
  ablation_worker_model();
  return 0;
}
