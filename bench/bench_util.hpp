// Shared helpers for the benchmark binaries (no gtest dependency).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "base/thread_pool.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/sud_tool.hpp"
#include "metrics/json.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp::bench {

inline void die(const std::string& message) {
  std::fprintf(stderr, "bench: fatal: %s\n", message.c_str());
  std::exit(1);
}

// Uniform CLI contract for every bench binary: `--cpus=N` selects the
// simulated CPU count (1 = the classic single-threaded machine) and is
// stripped before positional arguments, so all benches parse it identically
// and their BENCH_*.json artifacts stay comparable across CPU counts.
struct CliArgs {
  unsigned cpus = 1;
  std::vector<std::string> positional;

  [[nodiscard]] std::string positional_or(std::size_t index,
                                          const std::string& fallback) const {
    return index < positional.size() ? positional[index] : fallback;
  }
};

inline CliArgs parse_cli(int argc, char** argv) {
  CliArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cpus=", 0) == 0) {
      out.cpus = static_cast<unsigned>(
          std::strtoul(arg.c_str() + sizeof("--cpus=") - 1, nullptr, 10));
      if (out.cpus == 0) out.cpus = 1;
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

template <typename T>
T unwrap(Result<T> result, const char* what) {
  if (!result.is_ok()) die(std::string(what) + ": " + result.status().to_string());
  return std::move(result).value();
}

inline void check(const Status& status, const char* what) {
  if (!status.is_ok()) die(std::string(what) + ": " + status.to_string());
}

// The one way bench binaries emit their BENCH_*.json artifact: a top-level
// {"benchmark": ..., "results": [...]} object built from metrics::JsonObject
// rows, so every artifact the CI gates parse shares one escaper.
inline void write_json_report(const std::string& path,
                              const std::string& benchmark,
                              const std::vector<std::string>& result_objects,
                              unsigned cpus = 1) {
  metrics::JsonObject root;
  root.add("benchmark", benchmark);
  root.add("cpus", static_cast<std::uint64_t>(cpus));
  root.add("host_cores", static_cast<std::uint64_t>(ThreadPool::host_cores()));
  root.add_raw("results", metrics::json_array(result_objects));
  std::ofstream out(path);
  out << root.render() << "\n";
  if (!out) die("cannot write " + path);
  std::printf("json -> %s\n", path.c_str());
}

// The §V-B microbenchmark program: N invocations of the non-existent
// syscall 500 in a tight loop.
inline isa::Program make_micro_loop(std::uint64_t iterations,
                                    std::uint64_t nr = kern::kSysNonexistent) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, nr);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return unwrap(isa::make_program("micro-loop", a, entry), "assemble micro loop");
}

// Runs `program` on a fresh machine after `setup`, returning the main task's
// cycle count. Dies if the machine does not quiesce.
inline std::uint64_t run_cycles(
    const isa::Program& program,
    const std::function<void(kern::Machine&, kern::Tid)>& setup = nullptr,
    kern::CostModel costs = {}) {
  kern::Machine machine(costs);
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  const kern::Tid tid = unwrap(machine.load(program), "load");
  if (setup) setup(machine, tid);
  const auto stats = machine.run();
  if (!stats.all_exited) die("machine did not quiesce: " + machine.last_fatal());
  return machine.find_task(tid)->cycles;
}

// Mechanism setups used across benches. Each returns a setup callback.
using Setup = std::function<void(kern::Machine&, kern::Tid)>;

inline Setup setup_none() { return nullptr; }

inline Setup setup_sud_always_allow() {
  return [](kern::Machine& machine, kern::Tid tid) {
    check(mechanisms::SudMechanism::install_always_allow(machine, tid),
          "sud allow");
  };
}

inline Setup setup_sud(std::shared_ptr<interpose::SyscallHandler> handler) {
  return [handler](kern::Machine& machine, kern::Tid tid) {
    mechanisms::SudMechanism mechanism;
    check(mechanism.install(machine, tid, handler), "sud install");
  };
}

inline Setup setup_zpoline(const isa::Program& program,
                           std::shared_ptr<interpose::SyscallHandler> handler) {
  return [&program, handler](kern::Machine& machine, kern::Tid tid) {
    machine.register_program(program);
    zpoline::ZpolineMechanism mechanism;
    check(mechanism.install(machine, tid, handler), "zpoline install");
  };
}

// Steady-state lazypoline: sites pre-rewritten (§V-B methodology), SUD
// optionally disabled (Figure 4's "without SUD" config).
inline Setup setup_lazypoline(const isa::Program& program,
                              std::shared_ptr<interpose::SyscallHandler> handler,
                              core::XstateMode xstate, bool sud,
                              bool prerewrite = true) {
  return [&program, handler, xstate, sud, prerewrite](kern::Machine& machine,
                                                      kern::Tid tid) {
    machine.register_program(program);
    core::LazypolineConfig config;
    config.xstate = xstate;
    config.use_sud = sud;
    auto runtime = core::Lazypoline::create(machine, config);
    check(runtime->install(machine, tid, handler), "lazypoline install");
    if (prerewrite) {
      for (std::uint64_t site : program.true_syscall_addresses()) {
        check(runtime->rewrite_site_manually(tid, site), "manual rewrite");
      }
    }
    if (!sud) check(runtime->disable_sud(tid), "disable sud");
  };
}

}  // namespace lzp::bench
