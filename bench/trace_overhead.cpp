// Trace-subsystem overhead gate.
//
// Three configurations of the same lazypoline micro loop:
//   off      — no trace sink attached (the compiled-in null-check only)
//   disabled — Tracer attached, set_enabled(false): probes fire, recording
//              short-circuits on the enabled flag
//   enabled  — full recording into ring + registry
//
// Two claims are enforced: (1) tracing charges ZERO simulated cycles in every
// configuration — attaching a sink must never perturb what the other benches
// measure; (2) host-side wall time stays within the gate ratios (disabled
// within kDisabledGate of off, enabled within kEnabledGate). Wall times are
// min-of-N to shed scheduler noise. Results land in BENCH_trace_overhead.json
// for scripts/check.sh.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "bench_util.hpp"
#include "metrics/report.hpp"
#include "trace/tracer.hpp"

namespace {
using namespace lzp;

constexpr std::uint64_t kIterations = 20'000;
constexpr int kReps = 7;
constexpr double kDisabledGate = 1.02;
constexpr double kEnabledGate = 1.15;

struct RunResult {
  double wall_ms = 0.0;      // min over kReps
  std::uint64_t sim_cycles = 0;
  std::uint64_t trace_events = 0;
  // Latency quantiles (simulated cycles) of the hottest per-(syscall, mech)
  // histogram the tracer recorded — deterministic, so any rep's copy works.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

enum class Mode { kOff, kDisabled, kEnabled };

RunResult run_mode(Mode mode) {
  const auto program = bench::make_micro_loop(kIterations);
  auto dummy = std::make_shared<interpose::DummyHandler>();
  RunResult result;
  result.wall_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    trace::Tracer tracer;
    tracer.set_enabled(mode == Mode::kEnabled);
    auto inner = bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                                         /*sud=*/true);
    bench::Setup setup = [&](kern::Machine& machine, kern::Tid tid) {
      if (mode != Mode::kOff) tracer.attach(machine);
      inner(machine, tid);
    };
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t cycles = bench::run_cycles(program, setup);
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    result.wall_ms = std::min(result.wall_ms, ms);
    if (result.sim_cycles != 0 && result.sim_cycles != cycles) {
      bench::die("simulated cycles varied between repetitions");
    }
    result.sim_cycles = cycles;
    result.trace_events = tracer.ring().size() + tracer.ring().dropped();
    const trace::LatencyHistogram* hottest = nullptr;
    for (const auto& [key, hist] : tracer.metrics().histograms()) {
      if (hottest == nullptr || hist.total() > hottest->total()) {
        hottest = &hist;
      }
    }
    if (hottest != nullptr) {
      result.p50 = hottest->quantile(0.50);
      result.p95 = hottest->quantile(0.95);
      result.p99 = hottest->quantile(0.99);
    }
  }
  return result;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kDisabled: return "disabled";
    case Mode::kEnabled: return "enabled";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliArgs cli = bench::parse_cli(argc, argv);
  const std::string json_path =
      cli.positional_or(0, "BENCH_trace_overhead.json");

  const RunResult off = run_mode(Mode::kOff);
  const RunResult disabled = run_mode(Mode::kDisabled);
  const RunResult enabled = run_mode(Mode::kEnabled);

  // Claim 1: cycle determinism. The simulated cost of the run is identical
  // whether or not anyone is watching.
  if (disabled.sim_cycles != off.sim_cycles ||
      enabled.sim_cycles != off.sim_cycles) {
    std::fprintf(stderr,
                 "FAIL: tracing perturbed simulated cycles "
                 "(off=%llu disabled=%llu enabled=%llu)\n",
                 static_cast<unsigned long long>(off.sim_cycles),
                 static_cast<unsigned long long>(disabled.sim_cycles),
                 static_cast<unsigned long long>(enabled.sim_cycles));
    return 1;
  }

  const double disabled_x = disabled.wall_ms / off.wall_ms;
  const double enabled_x = enabled.wall_ms / off.wall_ms;

  metrics::Table table({"config", "wall ms (min)", "x off", "sim cycles",
                        "trace events", "p50", "p95", "p99"});
  const struct {
    Mode mode;
    const RunResult* r;
    double x;
  } rows[] = {{Mode::kOff, &off, 1.0},
              {Mode::kDisabled, &disabled, disabled_x},
              {Mode::kEnabled, &enabled, enabled_x}};
  std::vector<std::string> results;
  for (const auto& row : rows) {
    table.add_row({mode_name(row.mode), format_double(row.r->wall_ms, 3),
                   metrics::ratio(row.x), std::to_string(row.r->sim_cycles),
                   std::to_string(row.r->trace_events),
                   format_double(row.r->p50, 0), format_double(row.r->p95, 0),
                   format_double(row.r->p99, 0)});
    results.push_back(metrics::JsonObject()
                          .add("config", mode_name(row.mode))
                          .add("wall_ms", row.r->wall_ms)
                          .add("x_off", row.x)
                          .add("sim_cycles", row.r->sim_cycles)
                          .add("trace_events", row.r->trace_events)
                          .add("p50_cycles", row.r->p50)
                          .add("p95_cycles", row.r->p95)
                          .add("p99_cycles", row.r->p99)
                          .render());
  }
  std::printf("== Trace overhead (lazypoline micro loop, %llu syscalls, "
              "min of %d) ==\n%s\n",
              static_cast<unsigned long long>(kIterations), kReps,
              table.render().c_str());
  // The micro loop is single-task, so --cpus only tags the artifact (keeps
  // the JSON schema uniform with the SMP-capable benches).
  bench::write_json_report(json_path, "trace_overhead", results, cli.cpus);

  // Claim 2: wall-time gates.
  if (disabled_x > kDisabledGate) {
    std::fprintf(stderr,
                 "FAIL: attached-but-disabled tracing costs %.3fx (> %.2fx)\n",
                 disabled_x, kDisabledGate);
    return 1;
  }
  if (enabled_x > kEnabledGate) {
    std::fprintf(stderr, "FAIL: enabled tracing costs %.3fx (> %.2fx)\n",
                 enabled_x, kEnabledGate);
    return 1;
  }
  std::printf("PASS: disabled %.3fx <= %.2fx, enabled %.3fx <= %.2fx, "
              "sim cycles identical\n",
              disabled_x, kDisabledGate, enabled_x, kEnabledGate);
  return 0;
}
