// Syscall-flow-integrity enforcement overhead gate.
//
// Three claims, one artifact (BENCH_policy.json):
//
//   1. OVERHEAD — the §V-B micro loop runs under each mechanism twice:
//      baseline (dummy handler) and enforced (PolicyEnforcer over the loop's
//      own statically extracted automaton, deny verdict, dummy inner). Wall
//      times are min-of-N; the gate is enforced/baseline <= 1.15x under
//      lazypoline. Enforcement must also charge ZERO simulated cycles: the
//      policy check is host-side bookkeeping, invisible to every other bench.
//
//   2. HIT-RATE — per mechanism, the fraction of checked transitions decided
//      by a concrete per-state seccomp-BPF filter (as opposed to the
//      wildcard allow-all or the exit always-allow): the policy must
//      actually be doing set-membership work, not degrading to allow-all.
//
//   3. PRECISION — the headline static-vs-dynamic table on the webserver:
//      edge/state counts of the statically extracted automaton vs the
//      dynamically learned one, and the static ⊇ dynamic containment the
//      soundness argument rests on. Enforcing the static automaton on the
//      webserver itself must produce zero violations on all four mechanisms.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "bench_util.hpp"
#include "apps/webserver.hpp"
#include "bpf/seccomp_filter.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "metrics/report.hpp"
#include "policy/compile.hpp"
#include "policy/enforce.hpp"
#include "policy/extract.hpp"

namespace {
using namespace lzp;

constexpr std::uint64_t kIterations = 20'000;
constexpr int kReps = 7;
constexpr double kLazypolineGate = 1.15;
constexpr std::uint64_t kWebSeed = 0x1A5F'9E37ULL;

const std::vector<std::string> kMechanisms = {"ptrace", "sud", "zpoline",
                                              "lazypoline"};

bench::Setup setup_for(const std::string& mechanism,
                       const isa::Program& program,
                       std::shared_ptr<interpose::SyscallHandler> handler) {
  if (mechanism == "ptrace") {
    return [handler](kern::Machine& machine, kern::Tid tid) {
      bench::check(mechanisms::PtraceMechanism().install(machine, tid, handler),
                   "ptrace install");
    };
  }
  if (mechanism == "sud") return bench::setup_sud(handler);
  if (mechanism == "zpoline") return bench::setup_zpoline(program, handler);
  return bench::setup_lazypoline(program, handler, core::XstateMode::kFull,
                                 /*sud=*/true);
}

struct MicroResult {
  double wall_base_ms = 1e18;
  double wall_enforced_ms = 1e18;
  std::uint64_t cycles_base = 0;
  std::uint64_t cycles_enforced = 0;
  policy::EnforcerStats stats;  // from the last enforced rep
};

double hit_rate(const policy::EnforcerStats& stats) {
  if (stats.transitions_checked == 0) return 0.0;
  const std::uint64_t concrete = stats.transitions_checked -
                                 stats.wildcard_allows - stats.always_allows;
  return 100.0 * static_cast<double>(concrete) /
         static_cast<double>(stats.transitions_checked);
}

MicroResult run_micro(const std::string& mechanism,
                      const isa::Program& program,
                      const policy::Automaton& automaton) {
  MicroResult out;
  for (int rep = 0; rep < kReps; ++rep) {
    // Baseline leg.
    {
      auto dummy = std::make_shared<interpose::DummyHandler>();
      const auto start = std::chrono::steady_clock::now();
      const std::uint64_t cycles =
          bench::run_cycles(program, setup_for(mechanism, program, dummy));
      const auto end = std::chrono::steady_clock::now();
      out.wall_base_ms = std::min(
          out.wall_base_ms,
          std::chrono::duration<double, std::milli>(end - start).count());
      if (out.cycles_base != 0 && out.cycles_base != cycles) {
        bench::die("baseline cycles varied between repetitions");
      }
      out.cycles_base = cycles;
    }
    // Enforced leg: a fresh enforcer per rep (per-task automaton state).
    {
      auto enforcer = bench::unwrap(
          policy::PolicyEnforcer::create(automaton, {}), "create enforcer");
      const auto start = std::chrono::steady_clock::now();
      const std::uint64_t cycles =
          bench::run_cycles(program, setup_for(mechanism, program, enforcer));
      const auto end = std::chrono::steady_clock::now();
      out.wall_enforced_ms = std::min(
          out.wall_enforced_ms,
          std::chrono::duration<double, std::milli>(end - start).count());
      if (out.cycles_enforced != 0 && out.cycles_enforced != cycles) {
        bench::die("enforced cycles varied between repetitions");
      }
      out.cycles_enforced = cycles;
      out.stats = enforcer->stats();
      if (out.stats.violations != 0) {
        bench::die("micro loop violated its own automaton under " + mechanism);
      }
    }
  }
  return out;
}

// --- webserver leg -----------------------------------------------------------

struct WebSetup {
  isa::Program program;
  std::vector<kern::Tid> tids;
};

void setup_webserver(kern::Machine& machine, WebSetup* out) {
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kWebSeed);
  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  bench::check(machine.vfs().put_file_of_size("index.html", kFileSize),
               "put index.html");
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = 60;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);
  out->program = bench::unwrap(
      apps::make_webserver(machine, profile, "index.html"), "make webserver");
  machine.register_program(out->program);
  for (int worker = 0; worker < 2; ++worker) {
    const kern::Tid tid =
        bench::unwrap(machine.load(out->program), "load worker");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    out->tids.push_back(tid);
  }
}

policy::EnforcerStats run_web_enforced(const std::string& mechanism,
                                       const policy::Automaton& automaton) {
  kern::Machine machine;
  WebSetup setup;
  setup_webserver(machine, &setup);
  auto enforcer = bench::unwrap(policy::PolicyEnforcer::create(automaton, {}),
                                "create enforcer");
  for (const kern::Tid tid : setup.tids) {
    if (mechanism == "ptrace") {
      bench::check(
          mechanisms::PtraceMechanism().install(machine, tid, enforcer),
          "ptrace install");
    } else if (mechanism == "sud") {
      bench::check(mechanisms::SudMechanism().install(machine, tid, enforcer),
                   "sud install");
    } else if (mechanism == "zpoline") {
      bench::check(zpoline::ZpolineMechanism().install(machine, tid, enforcer),
                   "zpoline install");
    } else {
      auto runtime = core::Lazypoline::create(machine, {});
      bench::check(runtime->install(machine, tid, enforcer),
                   "lazypoline install");
    }
  }
  const auto stats = machine.run(400'000'000ULL);
  if (!stats.all_exited) bench::die("webserver hung under " + mechanism);
  return enforcer->stats();
}

std::vector<std::pair<kern::Tid, std::uint64_t>> run_web_traced() {
  kern::Machine machine;
  WebSetup setup;
  setup_webserver(machine, &setup);
  auto tracer = std::make_shared<interpose::TracingHandler>();
  for (const kern::Tid tid : setup.tids) {
    auto runtime = core::Lazypoline::create(machine, {});
    bench::check(runtime->install(machine, tid, tracer), "lazypoline install");
  }
  const auto stats = machine.run(400'000'000ULL);
  if (!stats.all_exited) bench::die("traced webserver hung");
  std::vector<std::pair<kern::Tid, std::uint64_t>> stream;
  stream.reserve(tracer->trace().size());
  for (const interpose::TraceRecord& record : tracer->trace()) {
    stream.emplace_back(record.tid, record.nr);
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliArgs cli = bench::parse_cli(argc, argv);
  const std::string json_path = cli.positional_or(0, "BENCH_policy.json");
  std::vector<std::string> results;

  // --- 1 + 2: micro-loop overhead and hit-rate per mechanism ---------------
  const isa::Program micro = bench::make_micro_loop(kIterations);
  const policy::StaticExtraction micro_ex = policy::extract_static(micro);
  double lazypoline_x = 0.0;
  metrics::Table micro_table({"mechanism", "base ms", "enforced ms",
                              "x base", "transitions", "hit-rate"});
  for (const std::string& mechanism : kMechanisms) {
    const MicroResult r = run_micro(mechanism, micro, micro_ex.automaton);
    if (r.cycles_enforced != r.cycles_base) {
      std::fprintf(stderr,
                   "FAIL: enforcement perturbed simulated cycles under %s "
                   "(base=%llu enforced=%llu)\n",
                   mechanism.c_str(),
                   static_cast<unsigned long long>(r.cycles_base),
                   static_cast<unsigned long long>(r.cycles_enforced));
      return 1;
    }
    const double x = r.wall_enforced_ms / r.wall_base_ms;
    if (mechanism == "lazypoline") lazypoline_x = x;
    micro_table.add_row(
        {mechanism, format_double(r.wall_base_ms, 3),
         format_double(r.wall_enforced_ms, 3), metrics::ratio(x),
         std::to_string(r.stats.transitions_checked),
         format_double(hit_rate(r.stats), 1) + "%"});
    results.push_back(metrics::JsonObject()
                          .add("kind", "micro")
                          .add("mechanism", mechanism)
                          .add("wall_ms_base", r.wall_base_ms)
                          .add("wall_ms_enforced", r.wall_enforced_ms)
                          .add("x_enforced", x)
                          .add("sim_cycles", r.cycles_base)
                          .add("transitions", r.stats.transitions_checked)
                          .add("violations", r.stats.violations)
                          .add("hit_rate", hit_rate(r.stats))
                          .add("bpf_insns", r.stats.bpf_insns_executed)
                          .render());
  }
  std::printf("== Policy enforcement overhead (micro loop, %llu syscalls, "
              "min of %d) ==\n%s\n",
              static_cast<unsigned long long>(kIterations), kReps,
              micro_table.render().c_str());

  // --- 3: webserver precision + zero-false-violation sweep -----------------
  kern::Machine extract_machine;
  WebSetup web;
  setup_webserver(extract_machine, &web);
  const policy::StaticExtraction web_static = policy::extract_static(web.program);
  const policy::Automaton web_dynamic =
      policy::learn_from_sequence(run_web_traced(), "webserver");
  const bool contained = web_static.automaton.contains(web_dynamic);

  metrics::Table web_table({"mechanism", "transitions", "violations",
                            "hit-rate"});
  bool web_clean = true;
  for (const std::string& mechanism : kMechanisms) {
    const policy::EnforcerStats stats =
        run_web_enforced(mechanism, web_static.automaton);
    if (stats.violations != 0) web_clean = false;
    web_table.add_row({mechanism, std::to_string(stats.transitions_checked),
                       std::to_string(stats.violations),
                       format_double(hit_rate(stats), 1) + "%"});
    results.push_back(metrics::JsonObject()
                          .add("kind", "webserver")
                          .add("mechanism", mechanism)
                          .add("transitions", stats.transitions_checked)
                          .add("violations", stats.violations)
                          .add("hit_rate", hit_rate(stats))
                          .render());
  }
  std::printf("== Webserver under its extracted policy ==\n%s\n",
              web_table.render().c_str());

  // Lowering precision: the per-state cBPF artifact before and after
  // automaton minimization + equivalent-state sharing.
  policy::CompileOptions unshared;
  unshared.share_equivalent_states = false;
  const auto compiled_baseline = bench::unwrap(
      policy::compile_to_seccomp(web_static.automaton,
                                 bpf::SECCOMP_RET_KILL_PROCESS, unshared),
      "compile unminimized");
  const policy::MinimizeResult minimized =
      policy::minimize(web_static.automaton);
  const auto compiled_min = bench::unwrap(
      policy::compile_to_seccomp(minimized.automaton,
                                 bpf::SECCOMP_RET_KILL_PROCESS, {}),
      "compile minimized");
  const std::size_t insns_unmin = compiled_baseline.total_filter_insns();
  const std::size_t insns_min = compiled_min.total_filter_insns();

  metrics::Table precision({"automaton", "states", "edges"});
  precision.add_row({"static (CFG walk)",
                     std::to_string(web_static.automaton.state_count()),
                     std::to_string(web_static.automaton.edge_count())});
  precision.add_row({"dynamic (learned)",
                     std::to_string(web_dynamic.state_count()),
                     std::to_string(web_dynamic.edge_count())});
  std::printf("== Static vs dynamic precision (webserver) ==\n%s"
              "containment (static ⊇ dynamic): %s; %zu/%zu sites statically "
              "resolved (%zu block-local + %zu value-flow), %zu predicated "
              "edges\nlowering: %zu cBPF insns minimized (%zu states, %zu "
              "filters) vs %zu unminimized\n\n",
              precision.render().c_str(), contained ? "yes" : "NO",
              web_static.sites_resolved, web_static.sites_total,
              web_static.sites_resolved_blocklocal,
              web_static.sites_resolved_dataflow,
              web_static.automaton.predicated_edge_count(),
              insns_min, minimized.automaton.state_count(),
              compiled_min.class_count(), insns_unmin);
  results.push_back(metrics::JsonObject()
                        .add("kind", "precision")
                        .add("static_edges", web_static.automaton.edge_count())
                        .add("static_states",
                             web_static.automaton.state_count())
                        .add("dynamic_edges", web_dynamic.edge_count())
                        .add("dynamic_states", web_dynamic.state_count())
                        .add("contains_dynamic", contained)
                        .add("sites_total", web_static.sites_total)
                        .add("sites_resolved", web_static.sites_resolved)
                        .add("sites_resolved_blocklocal",
                             web_static.sites_resolved_blocklocal)
                        .add("sites_resolved_dataflow",
                             web_static.sites_resolved_dataflow)
                        .add("predicated_edges",
                             web_static.automaton.predicated_edge_count())
                        .add("insns_unminimized",
                             static_cast<std::uint64_t>(insns_unmin))
                        .add("insns_minimized",
                             static_cast<std::uint64_t>(insns_min))
                        .render());

  // The workloads are single-CPU; --cpus only tags the artifact for schema
  // uniformity with the SMP-capable benches.
  bench::write_json_report(json_path, "policy_overhead", results, cli.cpus);

  // --- gates ----------------------------------------------------------------
  if (lazypoline_x > kLazypolineGate) {
    std::fprintf(stderr, "FAIL: lazypoline enforcement costs %.3fx (> %.2fx)\n",
                 lazypoline_x, kLazypolineGate);
    return 1;
  }
  if (!web_clean) {
    std::fprintf(stderr, "FAIL: false violations on the webserver\n");
    return 1;
  }
  if (!contained) {
    std::fprintf(stderr, "FAIL: static automaton does not contain dynamic\n");
    return 1;
  }
  if (insns_min > insns_unmin) {
    std::fprintf(stderr,
                 "FAIL: minimization grew the cBPF lowering (%zu > %zu)\n",
                 insns_min, insns_unmin);
    return 1;
  }
  std::printf("PASS: lazypoline enforcement %.3fx <= %.2fx, zero false "
              "violations on all mechanisms, static contains dynamic\n",
              lazypoline_x, kLazypolineGate);
  return 0;
}
