// Record-mode overhead of the src/replay Recorder across the four
// interposition mechanisms, on the two application workloads (webserver,
// coreutils). rr's authors report that recording cost is dominated by the
// price of intercepting syscalls and nondeterministic inputs; this bench
// turns the Table-I mechanism comparison into exactly that end-to-end
// application number: the same Recorder driven by ptrace, SUD, zpoline, and
// lazypoline.
//
// Expected shape: the recorder itself adds a small per-event cost (trace
// framing + out-buffer copies), so record-mode overhead tracks the
// mechanism's interposition cost — ptrace-based recording costs multiples of
// native, lazypoline-based recording stays within a few percent.
//
//   ./build/bench/record_overhead [out.json]
//
// Emits an ASCII table per workload plus a JSON summary (default
// BENCH_record_overhead.json) for the perf trajectory.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/coreutils.hpp"
#include "apps/webserver.hpp"
#include "bench_util.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "metrics/report.hpp"
#include "replay/recorder.hpp"

namespace {
using namespace lzp;
using bench::write_json_report;

constexpr std::uint64_t kSeed = 0x1A5F'9E37ULL;
constexpr std::uint64_t kRequests = 600;
constexpr std::uint64_t kFileSize = 4096;

enum class Mech { kNative, kPtrace, kSud, kZpoline, kLazypoline };
const char* mech_name(Mech mech) {
  switch (mech) {
    case Mech::kNative: return "native";
    case Mech::kPtrace: return "ptrace";
    case Mech::kSud: return "sud";
    case Mech::kZpoline: return "zpoline";
    case Mech::kLazypoline: return "lazypoline";
  }
  return "?";
}

void install(kern::Machine& machine, kern::Tid tid,
             const std::shared_ptr<interpose::SyscallHandler>& handler,
             Mech mech) {
  switch (mech) {
    case Mech::kNative:
      break;
    case Mech::kPtrace:
      bench::check(mechanisms::PtraceMechanism().install(machine, tid, handler),
                   "ptrace install");
      break;
    case Mech::kSud:
      bench::check(mechanisms::SudMechanism().install(machine, tid, handler),
                   "sud install");
      break;
    case Mech::kZpoline:
      bench::check(zpoline::ZpolineMechanism().install(machine, tid, handler),
                   "zpoline install");
      break;
    case Mech::kLazypoline: {
      auto runtime = core::Lazypoline::create(machine, {});
      bench::check(runtime->install(machine, tid, handler), "lazypoline install");
      break;
    }
  }
}

struct RunResult {
  std::uint64_t wall_cycles = 0;
  std::size_t trace_events = 0;  // 0 when not recording
};

// One webserver run (2 workers); wall time = the slowest worker, as in fig5.
RunResult run_webserver(Mech mech, bool record) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  auto recorder = std::make_shared<replay::Recorder>();
  if (record) recorder->attach(machine, kSeed, mech_name(mech), "webserver");
  const std::shared_ptr<interpose::SyscallHandler> handler =
      record ? std::static_pointer_cast<interpose::SyscallHandler>(recorder)
             : std::make_shared<interpose::DummyHandler>();

  const apps::ServerProfile profile = apps::nginx_profile();
  bench::check(machine.vfs().put_file_of_size("index.html", kFileSize),
               "seed file");
  kern::ClientWorkload workload;
  workload.connections = 8;
  workload.total_requests = kRequests;
  workload.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(workload);

  const auto program = bench::unwrap(
      apps::make_webserver(machine, profile, "index.html"), "build server");
  machine.register_program(program);
  std::vector<kern::Tid> tids;
  for (int worker = 0; worker < 2; ++worker) {
    const kern::Tid tid = bench::unwrap(machine.load(program), "load worker");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    install(machine, tid, handler, mech);
    tids.push_back(tid);
  }

  const auto stats = machine.run(2'000'000'000ULL);
  if (!stats.all_exited) bench::die("webserver hung: " + machine.last_fatal());
  if (machine.net().completed_requests(listener) != kRequests) {
    bench::die("webserver served wrong request count");
  }
  if (record && recorder->uncaptured_nondeterminism()) {
    bench::die("record audit: " + recorder->audit_report().front());
  }

  RunResult result;
  for (kern::Tid tid : tids) {
    result.wall_cycles =
        std::max(result.wall_cycles, machine.find_task(tid)->cycles);
  }
  if (record) result.trace_events = recorder->trace().events.size();
  return result;
}

// All ten coreutils (Ubuntu profile) back to back; cycles summed.
RunResult run_coreutils(Mech mech, bool record) {
  RunResult result;
  for (const std::string& name : apps::coreutil_names()) {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    auto recorder = std::make_shared<replay::Recorder>();
    if (record) recorder->attach(machine, kSeed, mech_name(mech), name);
    const std::shared_ptr<interpose::SyscallHandler> handler =
        record ? std::static_pointer_cast<interpose::SyscallHandler>(recorder)
               : std::make_shared<interpose::DummyHandler>();

    apps::populate_coreutil_fixtures(machine.vfs());
    const auto program = bench::unwrap(
        apps::make_coreutil(name, apps::LibcProfile::kUbuntu2004),
        "build coreutil");
    machine.register_program(program);
    const kern::Tid tid = bench::unwrap(machine.load(program), "load coreutil");
    install(machine, tid, handler, mech);

    const auto stats = machine.run();
    if (!stats.all_exited) bench::die(name + " hung: " + machine.last_fatal());
    if (record && recorder->uncaptured_nondeterminism()) {
      bench::die("record audit: " + recorder->audit_report().front());
    }
    result.wall_cycles += machine.find_task(tid)->cycles;
    if (record) result.trace_events += recorder->trace().events.size();
  }
  return result;
}

struct Row {
  std::string workload;
  std::string mechanism;
  std::uint64_t plain_cycles = 0;
  std::uint64_t record_cycles = 0;
  std::size_t trace_events = 0;
  double plain_x_native = 0.0;
  double record_x_native = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_record_overhead.json";
  const std::vector<Mech> mechs = {Mech::kPtrace, Mech::kSud, Mech::kZpoline,
                                   Mech::kLazypoline};
  std::vector<Row> rows;
  double ptrace_x = 0.0, lazypoline_x = 0.0;

  struct Workload {
    const char* name;
    RunResult (*run)(Mech, bool);
  };
  const Workload workloads[] = {{"webserver", run_webserver},
                                {"coreutils", run_coreutils}};

  std::printf("== Record-mode overhead: the same Recorder over four "
              "mechanisms ==\n\n");
  for (const auto& workload : workloads) {
    const std::uint64_t native = workload.run(Mech::kNative, false).wall_cycles;
    metrics::Table table({"mechanism", "plain cycles", "record cycles",
                          "plain x native", "record x native", "events"});
    for (Mech mech : mechs) {
      Row row;
      row.workload = workload.name;
      row.mechanism = mech_name(mech);
      row.plain_cycles = workload.run(mech, false).wall_cycles;
      const RunResult rec = workload.run(mech, true);
      row.record_cycles = rec.wall_cycles;
      row.trace_events = rec.trace_events;
      row.plain_x_native =
          static_cast<double>(row.plain_cycles) / static_cast<double>(native);
      row.record_x_native =
          static_cast<double>(row.record_cycles) / static_cast<double>(native);
      table.add_row({row.mechanism, std::to_string(row.plain_cycles),
                     std::to_string(row.record_cycles),
                     metrics::ratio(row.plain_x_native),
                     metrics::ratio(row.record_x_native),
                     std::to_string(row.trace_events)});
      if (mech == Mech::kPtrace) ptrace_x += row.record_x_native;
      if (mech == Mech::kLazypoline) lazypoline_x += row.record_x_native;
      rows.push_back(std::move(row));
    }
    std::printf("-- %s (native baseline: %llu cycles) --\n%s\n", workload.name,
                static_cast<unsigned long long>(native),
                table.render().c_str());
  }

  std::vector<std::string> results;
  results.reserve(rows.size());
  for (const Row& row : rows) {
    results.push_back(metrics::JsonObject()
                          .add("workload", row.workload)
                          .add("mechanism", row.mechanism)
                          .add("plain_cycles", row.plain_cycles)
                          .add("record_cycles", row.record_cycles)
                          .add("plain_x_native", row.plain_x_native)
                          .add("record_x_native", row.record_x_native)
                          .add("trace_events",
                               static_cast<std::uint64_t>(row.trace_events))
                          .render());
  }
  write_json_report(json_path, "record_overhead", results);

  // Acceptance: lazypoline-based recording must beat the ptrace recorder.
  if (lazypoline_x >= ptrace_x) {
    std::fprintf(stderr,
                 "FAIL: lazypoline record overhead (%.2fx summed) not below "
                 "ptrace (%.2fx summed)\n",
                 lazypoline_x, ptrace_x);
    return 1;
  }
  std::printf("lazypoline record overhead %.2fx vs ptrace %.2fx (summed over "
              "workloads): OK\n",
              lazypoline_x / 2.0, ptrace_x / 2.0);
  return 0;
}
