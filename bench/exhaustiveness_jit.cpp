// Reproduces the §V-A exhaustiveness experiment: run a tcc-style JIT
// compiler on a C program containing a single non-libc getpid syscall,
// under SUD, zpoline, and lazypoline, with a tracing interposer; diff the
// traces.
//
// Expected: SUD and lazypoline print the exact same syscalls in the same
// order, INCLUDING the JIT-generated getpid; zpoline's trace misses it,
// because the syscall instruction did not exist at its load-time scan.
#include <algorithm>
#include <cstdio>

#include "apps/jitcc.hpp"
#include "bench_util.hpp"
#include "interpose/handler.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;

std::vector<interpose::TraceRecord> run_traced(const std::string& which) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  const std::string src = apps::exhaustiveness_test_source();
  bench::check(machine.vfs().put_file(
                   "prog.c", std::vector<std::uint8_t>(src.begin(), src.end())),
               "seed source");
  const auto runner =
      bench::unwrap(apps::make_jit_runner(machine, "prog.c"), "build runner");
  machine.register_program(runner.program);
  const kern::Tid tid = bench::unwrap(machine.load(runner.program), "load");

  auto handler = std::make_shared<interpose::TracingHandler>();
  if (which == "SUD") {
    mechanisms::SudMechanism mechanism;
    bench::check(mechanism.install(machine, tid, handler), "sud");
  } else if (which == "zpoline") {
    zpoline::ZpolineMechanism mechanism;
    bench::check(mechanism.install(machine, tid, handler), "zpoline");
  } else {
    auto runtime = core::Lazypoline::create(machine, {});
    bench::check(runtime->install(machine, tid, handler), "lazypoline");
  }
  const auto stats = machine.run();
  if (!stats.all_exited) bench::die(which + " hung: " + machine.last_fatal());
  if (machine.find_task(tid)->exit_code != 21) {
    bench::die(which + ": wrong program result");
  }
  return handler->trace();
}

bool contains_getpid(const std::vector<interpose::TraceRecord>& trace) {
  return std::any_of(trace.begin(), trace.end(), [](const auto& record) {
    return record.nr == kern::kSysGetpid;
  });
}

}  // namespace

int main() {
  std::printf("== Exhaustiveness (paper V-A): JIT-compiled getpid under "
              "tcc-style `minicc -run` ==\n\n");

  const auto sud = run_traced("SUD");
  const auto lazy = run_traced("lazypoline");
  const auto zpoline = run_traced("zpoline");

  std::printf("-- lazypoline trace (%zu syscalls) --\n", lazy.size());
  for (const auto& record : lazy) {
    const bool jit = record.nr == kern::kSysGetpid;
    std::printf("  %s%s\n", record.to_string().c_str(),
                jit ? "    <-- the JIT-generated syscall" : "");
  }

  const bool same_order =
      sud.size() == lazy.size() &&
      std::equal(sud.begin(), sud.end(), lazy.begin(),
                 [](const auto& a, const auto& b) { return a.nr == b.nr; });

  std::printf("\n");
  metrics::Table table({"Interposer", "Syscalls traced", "JIT getpid traced"});
  table.add_row({"SUD", std::to_string(sud.size()),
                 contains_getpid(sud) ? "YES" : "NO"});
  table.add_row({"lazypoline", std::to_string(lazy.size()),
                 contains_getpid(lazy) ? "YES" : "NO"});
  table.add_row({"zpoline", std::to_string(zpoline.size()),
                 contains_getpid(zpoline) ? "NO (missed)" : "NO (missed)"});
  std::printf("%s\n", table.render().c_str());

  std::printf("lazypoline trace identical to SUD (same syscalls, same order): "
              "%s\n", same_order ? "YES" : "NO");
  std::printf("zpoline missed %zu syscall(s) that SUD/lazypoline intercepted.\n",
              sud.size() - zpoline.size());
  return same_order && contains_getpid(lazy) && !contains_getpid(zpoline) ? 0 : 1;
}
