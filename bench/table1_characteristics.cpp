// Reproduces Table I — but instead of just printing the paper's qualitative
// matrix, this harness *measures* each property:
//
//   Expressiveness: can the mechanism run an interposer that dereferences a
//     user pointer (deny open() by path prefix)? seccomp-bpf cannot even
//     install such a handler; its API only accepts number/arg-value rules.
//   Exhaustiveness: does the mechanism intercept a syscall whose instruction
//     is JIT-generated after installation (the V-A probe)?
//   Efficiency: microbenchmark overhead bucket (High < 3x, Moderate < 40x,
//     Low otherwise) on the non-existent-syscall loop.
#include <algorithm>
#include <cstdio>

#include "apps/jitcc.hpp"
#include "bench_util.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/seccomp_bpf_tool.hpp"
#include "mechanisms/seccomp_user_tool.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;

enum class Kind { kPtrace, kSeccompBpf, kSeccompUser, kSud, kZpoline, kLazypoline };

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kPtrace: return "ptrace";
    case Kind::kSeccompBpf: return "seccomp-bpf";
    case Kind::kSeccompUser: return "seccomp-user";
    case Kind::kSud: return "SUD";
    case Kind::kZpoline: return "zpoline (rewriting)";
    case Kind::kLazypoline: return "lazypoline (ours)";
  }
  return "?";
}

Status install(Kind kind, kern::Machine& machine, kern::Tid tid,
               std::shared_ptr<interpose::SyscallHandler> handler) {
  switch (kind) {
    case Kind::kPtrace: {
      mechanisms::PtraceMechanism mechanism;
      return mechanism.install(machine, tid, handler);
    }
    case Kind::kSeccompBpf: {
      mechanisms::SeccompBpfMechanism mechanism;
      return mechanism.install(machine, tid, handler);
    }
    case Kind::kSeccompUser: {
      mechanisms::SeccompUserMechanism mechanism;
      return mechanism.install(machine, tid, handler);
    }
    case Kind::kSud: {
      mechanisms::SudMechanism mechanism;
      return mechanism.install(machine, tid, handler);
    }
    case Kind::kZpoline: {
      zpoline::ZpolineMechanism mechanism;
      return mechanism.install(machine, tid, handler);
    }
    case Kind::kLazypoline: {
      auto runtime = core::Lazypoline::create(machine, {});
      return runtime->install(machine, tid, handler);
    }
  }
  return make_error(StatusCode::kInternal, "bad kind");
}

// Expressiveness probe: a program opens "secret/key"; a fully expressive
// interposer (PathPolicyHandler) must be able to deny it by inspecting the
// path string in task memory.
std::string probe_expressiveness(Kind kind) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path = apps::embed_string(a, "secret/key");
  a.mov(isa::Gpr::rdi, path);
  a.mov(isa::Gpr::rsi, 0);
  apps::emit_syscall(a, kern::kSysOpen);
  a.mov(isa::Gpr::rbx, 0);
  a.sub(isa::Gpr::rbx, isa::Gpr::rax);
  a.mov(isa::Gpr::rdi, isa::Gpr::rbx);  // exit code = -result
  apps::emit_syscall(a, kern::kSysExitGroup);
  const auto program =
      bench::unwrap(isa::make_program("open-secret", a, entry), "assemble");

  kern::Machine machine;
  machine.mmap_min_addr = 0;
  bench::check(machine.vfs().put_file("secret/key", {1, 2, 3}), "seed");
  machine.register_program(program);
  const kern::Tid tid = bench::unwrap(machine.load(program), "load");
  auto handler = std::make_shared<interpose::PathPolicyHandler>(
      std::vector<std::string>{"secret"});
  const Status status = install(kind, machine, tid, handler);
  if (!status.is_ok()) {
    return "Limited";  // cannot even host the deep-inspection handler
  }
  (void)machine.run();
  const int code = machine.find_task(tid)->exit_code;
  return code == kern::kEACCES && handler->denials() > 0 ? "Full" : "Limited";
}

// Exhaustiveness probe: is the JIT-generated getpid intercepted?
// For handler-based mechanisms we check the trace; for seccomp-bpf we check
// that an ERRNO rule on getpid applies to the JIT-generated invocation.
bool probe_exhaustiveness(Kind kind) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  const std::string src = "int main() { return syscall1(39, 0); }";
  bench::check(machine.vfs().put_file(
                   "p.c", std::vector<std::uint8_t>(src.begin(), src.end())),
               "seed");
  const auto runner =
      bench::unwrap(apps::make_jit_runner(machine, "p.c"), "runner");
  machine.register_program(runner.program);
  const kern::Tid tid = bench::unwrap(machine.load(runner.program), "load");

  if (kind == Kind::kSeccompBpf) {
    const mechanisms::SeccompRule rules[] = {
        {static_cast<std::uint32_t>(kern::kSysGetpid),
         bpf::SECCOMP_RET_ERRNO | 77}};
    bench::check(mechanisms::SeccompBpfMechanism::install_filter(
                     machine, tid, rules, bpf::SECCOMP_RET_ALLOW),
                 "filter");
    (void)machine.run();
    // main returns getpid's result; -77 truncated means the rule reached
    // the JIT-generated syscall.
    return machine.find_task(tid)->exit_code == -77;
  }

  auto handler = std::make_shared<interpose::TracingHandler>();
  const Status status = install(kind, machine, tid, handler);
  if (!status.is_ok()) return false;
  (void)machine.run();
  const auto numbers = handler->traced_numbers();
  return std::find(numbers.begin(), numbers.end(),
                   std::uint64_t{kern::kSysGetpid}) != numbers.end();
}

std::pair<std::string, double> probe_efficiency(Kind kind) {
  const auto program = bench::make_micro_loop(20'000);
  const double baseline =
      static_cast<double>(bench::run_cycles(program, bench::setup_none()));
  const double cycles = static_cast<double>(bench::run_cycles(
      program, [&](kern::Machine& machine, kern::Tid tid) {
        if (kind == Kind::kSeccompBpf) {
          bench::check(mechanisms::SeccompBpfMechanism::install_monitoring_filter(
                           machine, tid),
                       "filter");
          return;
        }
        machine.register_program(program);
        bench::check(
            install(kind, machine, tid,
                    std::make_shared<interpose::DummyHandler>()),
            "install");
      }));
  const double ratio = cycles / baseline;
  const char* bucket = ratio < 3.0 ? "High" : ratio < 40.0 ? "Moderate" : "Low";
  return {bucket, ratio};
}

}  // namespace

int main() {
  std::printf("== Table I: measured characteristics of interposition "
              "mechanisms ==\n\n");
  metrics::Table table({"Mechanism", "Expressiveness", "Exhaustive",
                        "Efficiency", "(micro overhead)"});
  for (Kind kind : {Kind::kPtrace, Kind::kSeccompBpf, Kind::kSeccompUser,
                    Kind::kSud, Kind::kZpoline, Kind::kLazypoline}) {
    const std::string expressiveness = probe_expressiveness(kind);
    const bool exhaustive = probe_exhaustiveness(kind);
    const auto [bucket, ratio] = probe_efficiency(kind);
    table.add_row({kind_name(kind), expressiveness, exhaustive ? "yes" : "NO",
                   bucket, metrics::ratio(ratio)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper Table I: only lazypoline is simultaneously fully\n"
              "expressive, exhaustive, and high-efficiency.\n");
  return 0;
}
