// Reproduces Table II: microbenchmarking overhead compared to baseline.
//
// Paper methodology (§V-B): interpose a non-existent syscall (number 500)
// 100M times; report geomean overhead over baseline across 10 repeats and
// the maximal standard deviation. We scale the iteration count down (the
// simulator's cost model is cycle-deterministic, so precision does not
// depend on run length) and repeat with per-run seeds anyway to exercise
// the full pipeline.
//
// Paper reference values:        ours should land on:
//   zpoline                ~1.2x   (value corrupted in the source text)
//   lazypoline w/o xstate  1.66x
//   lazypoline             2.38x
//   SUD                    20.8x
//   baseline + SUD enabled 1.42x
#include <cstdio>
#include <vector>

#include "base/stats.hpp"
#include "bench_util.hpp"
#include "metrics/report.hpp"

namespace {

using namespace lzp;
using bench::Setup;

constexpr std::uint64_t kIterations = 50'000;
constexpr int kRepeats = 10;

struct Row {
  std::string name;
  std::vector<double> ratios;
};

}  // namespace

int main() {
  const isa::Program program = bench::make_micro_loop(kIterations);
  auto dummy = std::make_shared<interpose::DummyHandler>();

  // Baseline cycles per repeat (deterministic, but measured per repeat to
  // mirror the paper's procedure).
  std::vector<double> baseline_cycles;
  for (int r = 0; r < kRepeats; ++r) {
    baseline_cycles.push_back(
        static_cast<double>(bench::run_cycles(program, bench::setup_none())));
  }
  const double baseline = mean(baseline_cycles);

  const std::vector<std::pair<std::string, Setup>> configs = {
      {"zpoline", bench::setup_zpoline(program, dummy)},
      {"lazypoline without xstate preservation",
       bench::setup_lazypoline(program, dummy, core::XstateMode::kNone,
                               /*sud=*/true)},
      {"lazypoline",
       bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                               /*sud=*/true)},
      {"SUD", bench::setup_sud(dummy)},
      {"baseline with SUD enabled (selector=ALLOW)",
       bench::setup_sud_always_allow()},
  };

  std::printf("== Table II: microbenchmark overhead vs baseline ==\n");
  std::printf("(%d repeats of %llu x syscall(500); baseline %.0f cycles/run)\n\n",
              kRepeats, static_cast<unsigned long long>(kIterations), baseline);

  metrics::Table table({"Configuration", "Overhead", "Paper", "Max stddev"});
  const char* paper_values[] = {"~1.2x", "1.66x", "2.38x", "20.8x", "1.42x"};
  double max_stddev_pct = 0.0;

  int index = 0;
  for (const auto& [name, setup] : configs) {
    std::vector<double> ratios;
    for (int r = 0; r < kRepeats; ++r) {
      const double cycles =
          static_cast<double>(bench::run_cycles(program, setup));
      ratios.push_back(cycles / baseline);
    }
    const double overhead = geomean(ratios);
    const double sd = stddev_pct(ratios);
    max_stddev_pct = std::max(max_stddev_pct, sd);
    table.add_row({name, metrics::ratio(overhead), paper_values[index],
                   metrics::percent(sd)});
    ++index;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Standard deviation is below %.2f%% (paper: below 0.19%%; the\n"
              "simulator's cost model is deterministic, so repeats are exact).\n",
              max_stddev_pct + 0.005);
  return 0;
}
