// Reproduces Figure 5: throughput impact of interposition on web servers
// serving static content of different sizes, with 1 and 12 workers.
//
// Setup mirrors §V-B: a wrk-style client with 36 keepalive connections
// continuously requests the same static resource; server and client share
// the machine ("localhost"), so the workload is maximally syscall-intensive.
// Mechanisms: baseline (native), zpoline, lazypoline without xstate
// preservation, lazypoline (full), and a typical SUD deployment. The
// lazypoline runs include the live slow-path discovery (no pre-rewriting):
// the macrobenchmark evaluates exactly that aggregated cost.
//
// Expected shape (paper): in the worst single-worker case lazypoline w/o
// xstate keeps ~95% of baseline (within ~2-4pp of zpoline); xstate costs at
// most ~5pp more; SUD loses roughly half the throughput at small sizes and
// is still noticeable at 256K; gaps shrink as the file size grows; with 12
// workers the client/loopback becomes the bottleneck and the fast
// mechanisms converge.
#include <chrono>
#include <cstdio>

#include "apps/webserver.hpp"
#include "bench_util.hpp"
#include "base/strings.hpp"
#include "metrics/report.hpp"
#include "trace/metrics_registry.hpp"

namespace {
using namespace lzp;

constexpr double kGhz = 2.1;
constexpr std::uint64_t kRequests = 2400;
// Peak request rate the 36-thread client + loopback stack can sustain
// (requests/s); caps multi-worker results like the real testbed.
constexpr double kClientCapRps = 220'000.0;

enum class Mech { kBaseline, kZpoline, kLazyNoX, kLazyFull, kSud };

// Simulator-cache counters accumulated across every simulated run, reported
// at the end so the figure's wall-clock cost is attributable (hit rate of
// the simulator hot loop, and how often the lazypoline/zpoline rewrites
// invalidated cached state). With the superblock engine on (the default) the
// hot loop is served by the block cache and the decode cache stays cold; the
// decode-cache table is the reference-path story under -DLZP_BLOCK_EXEC=OFF.
cpu::DecodeCacheStats g_dcache_totals;
cpu::BlockCacheStats g_bcache_totals;
cpu::TraceCacheStats g_tcache_totals;

// SMP scheduler telemetry accumulated across every run_smp via the shared
// counter surface (trace/metrics_registry.hpp is header-only, so this costs
// no extra link dependency). Reported at the end of --cpus=N mode — the fix
// for SmpStats having been accumulated but never surfaced.
trace::MetricsRegistry g_smp_metrics;

void accumulate_dcache(const kern::Machine& machine) {
  const cpu::DecodeCacheStats totals = machine.decode_cache_totals();
  g_dcache_totals.hits += totals.hits;
  g_dcache_totals.misses += totals.misses;
  g_dcache_totals.invalidations += totals.invalidations;
  g_dcache_totals.flushes += totals.flushes;
  const cpu::BlockCacheStats blocks = machine.block_cache_totals();
  g_bcache_totals.hits += blocks.hits;
  g_bcache_totals.misses += blocks.misses;
  g_bcache_totals.invalidations += blocks.invalidations;
  g_bcache_totals.flushes += blocks.flushes;
  g_bcache_totals.blocks_built += blocks.blocks_built;
  const cpu::TraceCacheStats traces = machine.trace_cache_totals();
  g_tcache_totals.hits += traces.hits;
  g_tcache_totals.misses += traces.misses;
  g_tcache_totals.invalidations += traces.invalidations;
  g_tcache_totals.flushes += traces.flushes;
  g_tcache_totals.traces_built += traces.traces_built;
  g_tcache_totals.chain_follows += traces.chain_follows;
  g_tcache_totals.side_exits += traces.side_exits;
  g_tcache_totals.completions += traces.completions;
  g_tcache_totals.resumes += traces.resumes;
  g_tcache_totals.demotions += traces.demotions;
  g_tcache_totals.fused_fastpaths += traces.fused_fastpaths;
}

void install_mech(kern::Machine& machine, kern::Tid tid, Mech mech,
                  const std::shared_ptr<interpose::DummyHandler>& dummy) {
  switch (mech) {
    case Mech::kBaseline:
      break;
    case Mech::kZpoline: {
      zpoline::ZpolineMechanism mechanism;
      bench::check(mechanism.install(machine, tid, dummy), "zpoline");
      break;
    }
    case Mech::kLazyNoX:
    case Mech::kLazyFull: {
      core::LazypolineConfig config;
      config.xstate = mech == Mech::kLazyFull ? core::XstateMode::kFull
                                              : core::XstateMode::kNone;
      auto runtime = core::Lazypoline::create(machine, config);
      bench::check(runtime->install(machine, tid, dummy), "lazypoline");
      break;
    }
    case Mech::kSud: {
      mechanisms::SudMechanism mechanism;
      bench::check(mechanism.install(machine, tid, dummy), "sud");
      break;
    }
  }
}

double run_one(const apps::ServerProfile& profile, std::uint64_t file_size,
               int workers, Mech mech) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  bench::check(machine.vfs().put_file_of_size("index.html", file_size),
               "seed file");

  kern::ClientWorkload workload;
  workload.connections = 36;
  workload.total_requests = kRequests;
  workload.response_bytes = profile.header_bytes + file_size;
  const int listener = machine.net().create_listener(workload);

  const auto program = bench::unwrap(
      apps::make_webserver(machine, profile, "index.html"), "build server");
  machine.register_program(program);

  auto dummy = std::make_shared<interpose::DummyHandler>();
  std::vector<kern::Tid> tids;
  for (int w = 0; w < workers; ++w) {
    const kern::Tid tid = bench::unwrap(machine.load(program), "load worker");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    tids.push_back(tid);
    install_mech(machine, tid, mech, dummy);
  }

  const auto stats = machine.run(4'000'000'000ULL);
  if (!stats.all_exited) bench::die("server hung: " + machine.last_fatal());
  if (machine.net().completed_requests(listener) != kRequests) {
    bench::die("dropped requests");
  }

  accumulate_dcache(machine);

  // Workers run on dedicated cores: wall time = the slowest worker.
  std::uint64_t wall_cycles = 0;
  for (kern::Tid tid : tids) {
    wall_cycles = std::max(wall_cycles, machine.find_task(tid)->cycles);
  }
  const double seconds = static_cast<double>(wall_cycles) / (kGhz * 1e9);
  const double rps = static_cast<double>(kRequests) / seconds;
  return std::min(rps, kClientCapRps);
}

// --- SMP mode (--cpus=N) ----------------------------------------------------
//
// The datacenter-scale variant: N independent worker processes, each with its
// own SO_REUSEPORT-style listener (private request budget, 4 keepalive
// connections), executed on a simulated N'-CPU machine via run_smp. Because
// every worker is a separate process with a private listener, the workload is
// embarrassingly parallel and the deterministic rebalancer spreads the
// single-task gang groups evenly; simulated wall time is the slowest CPU's
// worker, so interposition overhead dilutes as workers scale out.

struct SmpRun {
  double rps = 0.0;        // simulated requests/s, client-capped like the
                           // testbed: past the cap mechanisms converge
  double host_ms = 0.0;    // host wall time of machine.run_smp
  std::uint64_t shootdowns = 0;
  std::uint64_t steals = 0;
  std::uint64_t barriers = 0;
  std::uint64_t mailbox_signals = 0;
};

SmpRun run_one_smp(const apps::ServerProfile& profile, std::uint64_t file_size,
                   unsigned workers, Mech mech, unsigned cpus) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  bench::check(machine.vfs().put_file_of_size("index.html", file_size),
               "seed file");

  const auto program = bench::unwrap(
      apps::make_webserver(machine, profile, "index.html"), "build server");
  machine.register_program(program);

  // Total request volume stays ~kRequests; each worker owns an equal share
  // (floor of 8 so the 256-worker point still exercises every worker).
  const std::uint64_t per_worker =
      std::max<std::uint64_t>(kRequests / workers, 8);

  auto dummy = std::make_shared<interpose::DummyHandler>();
  std::vector<kern::Tid> tids;
  std::vector<int> listeners;
  for (unsigned w = 0; w < workers; ++w) {
    kern::ClientWorkload workload;
    workload.connections = 4;
    workload.total_requests = per_worker;
    workload.response_bytes = profile.header_bytes + file_size;
    const int listener = machine.net().create_listener(workload);
    listeners.push_back(listener);

    const kern::Tid tid = bench::unwrap(machine.load(program), "load worker");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    tids.push_back(tid);
    install_mech(machine, tid, mech, dummy);
  }

  kern::SmpConfig config;
  config.cpus = cpus;
  config.seed = 42;
  const auto start = std::chrono::steady_clock::now();
  const auto stats = machine.run_smp(config, 4'000'000'000ULL);
  const auto end = std::chrono::steady_clock::now();
  if (!stats.all_exited) bench::die("server hung: " + machine.last_fatal());
  for (int listener : listeners) {
    if (!machine.net().workload_done(listener)) bench::die("dropped requests");
  }

  accumulate_dcache(machine);

  // Simulated wall time = the slowest worker (each simulated CPU runs its
  // share in parallel; within a CPU, co-resident workers timeshare — their
  // cycle counters already include only their own work, so the max over
  // tasks *per CPU summed* would undercount; use max over per-CPU sums).
  std::vector<std::uint64_t> cpu_cycles(cpus, 0);
  for (kern::Tid tid : tids) {
    const kern::Task* task = machine.find_task(tid);
    cpu_cycles[task->cpu % cpus] += task->cycles;
  }
  std::uint64_t wall_cycles = 0;
  for (std::uint64_t c : cpu_cycles) wall_cycles = std::max(wall_cycles, c);

  SmpRun out;
  const double seconds = static_cast<double>(wall_cycles) / (kGhz * 1e9);
  out.rps = std::min(static_cast<double>(per_worker * workers) / seconds,
                     kClientCapRps);
  out.host_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  out.shootdowns = stats.shootdowns;
  out.steals = stats.steals;
  out.barriers = stats.barriers;
  out.mailbox_signals = stats.mailbox_signals;
  trace::record_smp_stats(g_smp_metrics, stats);
  return out;
}

int run_smp_mode(unsigned cpus, const std::string& json_path) {
  const apps::ServerProfile& profile = apps::nginx_profile();
  constexpr std::uint64_t kSize = 16 * 1024;
  std::printf("== Figure 5 (SMP): nginx 16K scale-out, %u simulated CPUs ==\n\n",
              cpus);

  const unsigned worker_counts[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const struct {
    Mech mech;
    const char* name;
  } mechs[] = {{Mech::kBaseline, "baseline"},
               {Mech::kZpoline, "zpoline"},
               {Mech::kLazyFull, "lazypoline"},
               {Mech::kSud, "sud"}};

  std::vector<std::string> rows;
  metrics::Table table(
      {"workers", "baseline", "zpoline", "lazypoline", "SUD"});
  for (unsigned workers : worker_counts) {
    double base_rps = 0.0;
    std::vector<std::string> cells;
    cells.push_back(std::to_string(workers));
    for (const auto& m : mechs) {
      const SmpRun r = run_one_smp(profile, kSize, workers, m.mech, cpus);
      if (m.mech == Mech::kBaseline) base_rps = r.rps;
      const double pct = 100.0 * r.rps / base_rps;
      char buffer[64];
      if (m.mech == Mech::kBaseline) {
        std::snprintf(buffer, sizeof(buffer), "%9.0f", r.rps);
      } else {
        std::snprintf(buffer, sizeof(buffer), "%9.0f (%6.2f%%)", r.rps, pct);
      }
      cells.push_back(buffer);
      rows.push_back(metrics::JsonObject()
                         .add("kind", "throughput")
                         .add("workers", static_cast<std::uint64_t>(workers))
                         .add("mech", m.name)
                         .add("rps", r.rps)
                         .add("pct_of_baseline", pct)
                         .add("host_ms", r.host_ms)
                         .add("shootdowns", r.shootdowns)
                         .add("steals", r.steals)
                         .add("barriers", r.barriers)
                         .add("mailbox_signals", r.mailbox_signals)
                         .render());
    }
    table.add_row(cells);
  }
  std::printf("-- simulated rps (%% of baseline), overhead dilution --\n%s\n",
              table.render().c_str());

  // Host wall-clock speedup: the same 8-worker baseline workload executed on
  // 1 simulated CPU (serial scheduler) vs. `cpus` (parallel host threads).
  // Min-of-3 to shed host scheduler noise.
  double serial_ms = 1e18;
  double parallel_ms = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    serial_ms = std::min(
        serial_ms,
        run_one_smp(profile, kSize, 8, Mech::kBaseline, 1).host_ms);
    parallel_ms = std::min(
        parallel_ms,
        run_one_smp(profile, kSize, 8, Mech::kBaseline, cpus).host_ms);
  }
  const double speedup = serial_ms / parallel_ms;
  const unsigned host_cores = ThreadPool::host_cores();
  std::printf("-- host speedup (8 workers, baseline, min of 3) --\n");
  std::printf("1 cpu: %.2f ms   %u cpus: %.2f ms   speedup: %.2fx "
              "(host has %u core%s)\n\n",
              serial_ms, cpus, parallel_ms, speedup, host_cores,
              host_cores == 1 ? "" : "s");
  rows.push_back(metrics::JsonObject()
                     .add("kind", "speedup")
                     .add("workers", std::uint64_t{8})
                     .add("mech", "baseline")
                     .add("host_ms_1cpu", serial_ms)
                     .add("host_ms_smp", parallel_ms)
                     .add("host_speedup_x", speedup)
                     .render());

  // Scheduler telemetry summed over every run_smp above (throughput grid +
  // speedup reps): the previously write-only SmpStats counters, surfaced via
  // the shared MetricsRegistry counter space.
  std::printf("-- smp scheduler telemetry (all runs) --\n%s\n",
              metrics::counters_table(
                  {g_smp_metrics.counters().begin(),
                   g_smp_metrics.counters().end()})
                  .c_str());

  bench::write_json_report(json_path, "fig5_smp", rows, cpus);

  // Gate: >=2x host speedup at 8 simulated CPUs — only meaningful when the
  // host actually has >=8 cores to run the lanes on.
  if (cpus >= 8 && host_cores >= 8) {
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: host speedup %.2fx < 2.0x at %u CPUs "
                   "(%u host cores)\n",
                   speedup, cpus, host_cores);
      return 1;
    }
    std::printf("PASS: host speedup %.2fx >= 2.0x at %u CPUs\n", speedup,
                cpus);
  } else {
    std::printf("SKIP: >=2x speedup gate needs --cpus>=8 and >=8 host cores "
                "(have --cpus=%u, %u host core%s); measured %.2fx\n",
                cpus, host_cores, host_cores == 1 ? "" : "s", speedup);
  }
  return 0;
}

void run_grid(const apps::ServerProfile& profile, int workers) {
  std::printf("-- %s, %d worker%s (requests/s; %% of baseline) --\n",
              profile.name.c_str(), workers, workers == 1 ? "" : "s");
  metrics::Table table({"size", "baseline", "zpoline", "lazyp-nox", "lazypoline",
                        "SUD"});
  const std::uint64_t sizes[] = {1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024};
  for (std::uint64_t size : sizes) {
    const double base = run_one(profile, size, workers, Mech::kBaseline);
    auto cell = [&](Mech mech) {
      const double rps = run_one(profile, size, workers, mech);
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%8.0f (%5.2f%%)", rps,
                    100.0 * rps / base);
      return std::string(buffer);
    };
    char base_text[32];
    std::snprintf(base_text, sizeof(base_text), "%8.0f", base);
    table.add_row({lzp::human_size(size), base_text, cell(Mech::kZpoline),
                   cell(Mech::kLazyNoX), cell(Mech::kLazyFull),
                   cell(Mech::kSud)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliArgs cli = bench::parse_cli(argc, argv);
  if (cli.cpus > 1) {
    return run_smp_mode(cli.cpus, cli.positional_or(0, "BENCH_smp.json"));
  }

  std::printf("== Figure 5: web server throughput under interposition ==\n\n");
  const std::string which = cli.positional_or(0, "");
  if (which.empty() || which == "--server=nginx" || which == "nginx") {
    run_grid(apps::nginx_profile(), 1);
    run_grid(apps::nginx_profile(), 12);
  }
  if (which.empty() || which == "--server=lighttpd" || which == "lighttpd") {
    run_grid(apps::lighttpd_profile(), 1);
    run_grid(apps::lighttpd_profile(), 12);
  }

  std::printf("-- simulator decode cache (all runs) --\n");
  std::printf("%s", metrics::counters_table(
                        {{"hits", g_dcache_totals.hits},
                         {"misses", g_dcache_totals.misses},
                         {"invalidations", g_dcache_totals.invalidations},
                         {"flushes", g_dcache_totals.flushes}})
                        .c_str());
  std::printf("hit rate: %s\n",
              metrics::percent(100.0 * g_dcache_totals.hit_rate()).c_str());

  std::printf("\n-- simulator block cache (all runs) --\n");
  std::printf("%s", metrics::counters_table(
                        {{"hits", g_bcache_totals.hits},
                         {"misses", g_bcache_totals.misses},
                         {"invalidations", g_bcache_totals.invalidations},
                         {"flushes", g_bcache_totals.flushes},
                         {"blocks built", g_bcache_totals.blocks_built}})
                        .c_str());
  std::printf("hit rate: %s\n",
              metrics::percent(100.0 * g_bcache_totals.hit_rate()).c_str());

  std::printf("\n-- simulator trace cache (all runs) --\n");
  std::printf("%s",
              metrics::counters_table(
                  {{"hits", g_tcache_totals.hits},
                   {"misses", g_tcache_totals.misses},
                   {"invalidations", g_tcache_totals.invalidations},
                   {"traces built", g_tcache_totals.traces_built},
                   {"chain follows", g_tcache_totals.chain_follows},
                   {"side exits", g_tcache_totals.side_exits},
                   {"completions", g_tcache_totals.completions},
                   {"resumes", g_tcache_totals.resumes},
                   {"demotions", g_tcache_totals.demotions},
                   {"fused fastpaths", g_tcache_totals.fused_fastpaths}})
                  .c_str());
  return 0;
}
