// Reproduces Figure 5: throughput impact of interposition on web servers
// serving static content of different sizes, with 1 and 12 workers.
//
// Setup mirrors §V-B: a wrk-style client with 36 keepalive connections
// continuously requests the same static resource; server and client share
// the machine ("localhost"), so the workload is maximally syscall-intensive.
// Mechanisms: baseline (native), zpoline, lazypoline without xstate
// preservation, lazypoline (full), and a typical SUD deployment. The
// lazypoline runs include the live slow-path discovery (no pre-rewriting):
// the macrobenchmark evaluates exactly that aggregated cost.
//
// Expected shape (paper): in the worst single-worker case lazypoline w/o
// xstate keeps ~95% of baseline (within ~2-4pp of zpoline); xstate costs at
// most ~5pp more; SUD loses roughly half the throughput at small sizes and
// is still noticeable at 256K; gaps shrink as the file size grows; with 12
// workers the client/loopback becomes the bottleneck and the fast
// mechanisms converge.
#include <cstdio>

#include "apps/webserver.hpp"
#include "bench_util.hpp"
#include "base/strings.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;

constexpr double kGhz = 2.1;
constexpr std::uint64_t kRequests = 2400;
// Peak request rate the 36-thread client + loopback stack can sustain
// (requests/s); caps multi-worker results like the real testbed.
constexpr double kClientCapRps = 220'000.0;

enum class Mech { kBaseline, kZpoline, kLazyNoX, kLazyFull, kSud };

// Simulator-cache counters accumulated across every simulated run, reported
// at the end so the figure's wall-clock cost is attributable (hit rate of
// the simulator hot loop, and how often the lazypoline/zpoline rewrites
// invalidated cached state). With the superblock engine on (the default) the
// hot loop is served by the block cache and the decode cache stays cold; the
// decode-cache table is the reference-path story under -DLZP_BLOCK_EXEC=OFF.
cpu::DecodeCacheStats g_dcache_totals;
cpu::BlockCacheStats g_bcache_totals;

void accumulate_dcache(const kern::Machine& machine) {
  const cpu::DecodeCacheStats totals = machine.decode_cache_totals();
  g_dcache_totals.hits += totals.hits;
  g_dcache_totals.misses += totals.misses;
  g_dcache_totals.invalidations += totals.invalidations;
  g_dcache_totals.flushes += totals.flushes;
  const cpu::BlockCacheStats blocks = machine.block_cache_totals();
  g_bcache_totals.hits += blocks.hits;
  g_bcache_totals.misses += blocks.misses;
  g_bcache_totals.invalidations += blocks.invalidations;
  g_bcache_totals.flushes += blocks.flushes;
  g_bcache_totals.blocks_built += blocks.blocks_built;
}

double run_one(const apps::ServerProfile& profile, std::uint64_t file_size,
               int workers, Mech mech) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  bench::check(machine.vfs().put_file_of_size("index.html", file_size),
               "seed file");

  kern::ClientWorkload workload;
  workload.connections = 36;
  workload.total_requests = kRequests;
  workload.response_bytes = profile.header_bytes + file_size;
  const int listener = machine.net().create_listener(workload);

  const auto program = bench::unwrap(
      apps::make_webserver(machine, profile, "index.html"), "build server");
  machine.register_program(program);

  auto dummy = std::make_shared<interpose::DummyHandler>();
  std::vector<kern::Tid> tids;
  for (int w = 0; w < workers; ++w) {
    const kern::Tid tid = bench::unwrap(machine.load(program), "load worker");
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
    tids.push_back(tid);

    switch (mech) {
      case Mech::kBaseline:
        break;
      case Mech::kZpoline: {
        zpoline::ZpolineMechanism mechanism;
        bench::check(mechanism.install(machine, tid, dummy), "zpoline");
        break;
      }
      case Mech::kLazyNoX:
      case Mech::kLazyFull: {
        core::LazypolineConfig config;
        config.xstate = mech == Mech::kLazyFull ? core::XstateMode::kFull
                                                : core::XstateMode::kNone;
        auto runtime = core::Lazypoline::create(machine, config);
        bench::check(runtime->install(machine, tid, dummy), "lazypoline");
        break;
      }
      case Mech::kSud: {
        mechanisms::SudMechanism mechanism;
        bench::check(mechanism.install(machine, tid, dummy), "sud");
        break;
      }
    }
  }

  const auto stats = machine.run(4'000'000'000ULL);
  if (!stats.all_exited) bench::die("server hung: " + machine.last_fatal());
  if (machine.net().completed_requests(listener) != kRequests) {
    bench::die("dropped requests");
  }

  accumulate_dcache(machine);

  // Workers run on dedicated cores: wall time = the slowest worker.
  std::uint64_t wall_cycles = 0;
  for (kern::Tid tid : tids) {
    wall_cycles = std::max(wall_cycles, machine.find_task(tid)->cycles);
  }
  const double seconds = static_cast<double>(wall_cycles) / (kGhz * 1e9);
  const double rps = static_cast<double>(kRequests) / seconds;
  return std::min(rps, kClientCapRps);
}

void run_grid(const apps::ServerProfile& profile, int workers) {
  std::printf("-- %s, %d worker%s (requests/s; %% of baseline) --\n",
              profile.name.c_str(), workers, workers == 1 ? "" : "s");
  metrics::Table table({"size", "baseline", "zpoline", "lazyp-nox", "lazypoline",
                        "SUD"});
  const std::uint64_t sizes[] = {1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024};
  for (std::uint64_t size : sizes) {
    const double base = run_one(profile, size, workers, Mech::kBaseline);
    auto cell = [&](Mech mech) {
      const double rps = run_one(profile, size, workers, mech);
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%8.0f (%5.2f%%)", rps,
                    100.0 * rps / base);
      return std::string(buffer);
    };
    char base_text[32];
    std::snprintf(base_text, sizeof(base_text), "%8.0f", base);
    table.add_row({lzp::human_size(size), base_text, cell(Mech::kZpoline),
                   cell(Mech::kLazyNoX), cell(Mech::kLazyFull),
                   cell(Mech::kSud)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 5: web server throughput under interposition ==\n\n");
  const std::string which = argc > 1 ? argv[1] : "";
  if (which.empty() || which == "--server=nginx" || which == "nginx") {
    run_grid(apps::nginx_profile(), 1);
    run_grid(apps::nginx_profile(), 12);
  }
  if (which.empty() || which == "--server=lighttpd" || which == "lighttpd") {
    run_grid(apps::lighttpd_profile(), 1);
    run_grid(apps::lighttpd_profile(), 12);
  }

  std::printf("-- simulator decode cache (all runs) --\n");
  std::printf("%s", metrics::counters_table(
                        {{"hits", g_dcache_totals.hits},
                         {"misses", g_dcache_totals.misses},
                         {"invalidations", g_dcache_totals.invalidations},
                         {"flushes", g_dcache_totals.flushes}})
                        .c_str());
  std::printf("hit rate: %s\n",
              metrics::percent(100.0 * g_dcache_totals.hit_rate()).c_str());

  std::printf("\n-- simulator block cache (all runs) --\n");
  std::printf("%s", metrics::counters_table(
                        {{"hits", g_bcache_totals.hits},
                         {"misses", g_bcache_totals.misses},
                         {"invalidations", g_bcache_totals.invalidations},
                         {"flushes", g_bcache_totals.flushes},
                         {"blocks built", g_bcache_totals.blocks_built}})
                        .c_str());
  std::printf("hit rate: %s\n",
              metrics::percent(100.0 * g_bcache_totals.hit_rate()).c_str());
  return 0;
}
