// Profiler overhead gate.
//
// Three configurations of the same lazypoline micro loop, each run under both
// execution engines (superblock batching on and off):
//   off      — no profile sink attached (the compiled-in null-check only)
//   disabled — Profiler attached, set_enabled(false): the machine's
//              profile_sink() accessor filters it out, probes never fire
//   enabled  — full attribution: class totals, site map, stack folding
//
// Three claims are enforced:
//   1. Profiling charges ZERO simulated cycles in every configuration — the
//      attribution mirror of Machine::charge() must never perturb what the
//      other benches measure, under either engine.
//   2. When enabled, the per-class cycle totals sum to the machine's retired
//      cycle counter exactly (the profiler's core invariant).
//   3. Host wall time stays within the gate ratios: disabled within
//      kDisabledGate of off, enabled within kEnabledGate (the ≤1.10x
//      acceptance bound). Wall times are min-of-N to shed scheduler noise.
// Results land in BENCH_profile_overhead.json for scripts/check.sh.
#include <chrono>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "bench_util.hpp"
#include "metrics/report.hpp"
#include "profile/profiler.hpp"

namespace {
using namespace lzp;

constexpr std::uint64_t kIterations = 20'000;
// Guest compute folded into each iteration (see make_profiled_loop).
constexpr std::uint64_t kPadInsns = 128;
// Step-engine site sampling period for the enabled profiler: the documented
// production configuration for per-instruction interpreters (ProfilerConfig
// — the machine batches skipped instructions' cycles onto the next probe, so
// class totals and site sums stay exact; only site granularity coarsens).
// The block engine keeps exact per-block attribution and no sampling.
constexpr std::uint64_t kStepSamplePeriod = 32;
// Min-of-N repetitions per mode: host timing noise on a shared machine runs
// to several percent, well above the 2% the disabled gate leaves, and only
// the minimum is stable against it. 15 interleaved reps keeps the gate's
// false-failure rate low at ~6s total runtime.
constexpr int kReps = 15;
constexpr double kDisabledGate = 1.02;
constexpr double kEnabledGate = 1.10;

// The profiled workload: the §V-B micro loop with a small guest compute
// kernel (kPadInsns add-immediates) folded into every iteration. The pure
// syscall storm charges an attribution transition every ~200 simulated
// cycles with almost no guest execution in between — an order of magnitude
// denser than any real program (the fig. 5 webservers retire thousands of
// guest instructions per request). 128 pad instructions per syscall still
// leans far toward the worst case but makes the gate measure profiling
// against a workload that actually executes guest code.
isa::Program make_profiled_loop(std::uint64_t iterations) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.mov(isa::Gpr::rcx, 0);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  for (std::uint64_t i = 0; i < kPadInsns; ++i) a.add(isa::Gpr::rcx, 1);
  a.mov(isa::Gpr::rax, kern::kSysNonexistent);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return bench::unwrap(isa::make_program("profile-loop", a, entry),
                       "assemble profile loop");
}

struct RunResult {
  double wall_ms = 0.0;  // min over kReps
  std::uint64_t sim_cycles = 0;
  std::uint64_t machine_cycles = 0;   // machine.total_cycles()
  std::uint64_t profiler_cycles = 0;  // sum of per-class attribution
  std::uint64_t folded_stacks = 0;
};

enum class Mode { kOff, kDisabled, kEnabled };

// One timed repetition of the micro loop under `mode`. The machine is built
// fresh per rep; only machine.run() is timed.
void run_once(Mode mode, bool block_engine, const isa::Program& program,
              const std::shared_ptr<interpose::DummyHandler>& dummy,
              RunResult* result) {
  profile::ProfilerConfig config;
  if (!block_engine) config.step_sample_period = kStepSamplePeriod;
  profile::Profiler profiler(config);
  profiler.set_enabled(mode == Mode::kEnabled);
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.block_exec_enabled = block_engine;
  if (mode != Mode::kOff) profiler.attach(machine);
  machine.register_program(program);
  const kern::Tid tid = bench::unwrap(machine.load(program), "load");
  bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                          /*sud=*/true)(machine, tid);
  const auto start = std::chrono::steady_clock::now();
  const auto stats = machine.run();
  const auto end = std::chrono::steady_clock::now();
  if (!stats.all_exited) {
    bench::die("machine did not quiesce: " + machine.last_fatal());
  }
  if (result == nullptr) return;  // warmup rep
  const std::uint64_t cycles = machine.find_task(tid)->cycles;
  const double ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result->wall_ms = std::min(result->wall_ms, ms);
  if (result->sim_cycles != 0 && result->sim_cycles != cycles) {
    bench::die("simulated cycles varied between repetitions");
  }
  result->sim_cycles = cycles;
  result->machine_cycles = machine.total_cycles();
  result->profiler_cycles = profiler.total_cycles();
  std::uint64_t stacks = 0;
  for (char c : profiler.folded_stacks()) stacks += c == '\n' ? 1 : 0;
  result->folded_stacks = stacks;
}

// All three modes, interleaved within each repetition so host-side drift
// (turbo decay, cache warmup, a noisy neighbor) biases every mode equally
// instead of whichever batch happened to run last. Rep -1 is a discarded
// warmup pass.
std::array<RunResult, 3> run_modes(bool block_engine) {
  const auto program = make_profiled_loop(kIterations);
  auto dummy = std::make_shared<interpose::DummyHandler>();
  std::array<RunResult, 3> out;
  for (auto& r : out) r.wall_ms = 1e18;
  constexpr Mode kModes[] = {Mode::kOff, Mode::kDisabled, Mode::kEnabled};
  for (int rep = -1; rep < kReps; ++rep) {
    for (int m = 0; m < 3; ++m) {
      run_once(kModes[m], block_engine, program, dummy,
               rep < 0 ? nullptr : &out[m]);
    }
  }
  return out;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kDisabled: return "disabled";
    case Mode::kEnabled: return "enabled";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliArgs cli = bench::parse_cli(argc, argv);
  const std::string json_path =
      cli.positional_or(0, "BENCH_profile_overhead.json");

  std::vector<std::string> results;
  bool pass = true;
  for (const bool block_engine : {true, false}) {
    const char* engine = block_engine ? "block" : "step";
    const auto [off, disabled, enabled] = run_modes(block_engine);

    // Claim 1: cycle determinism — the simulated cost is identical whether
    // or not anyone is profiling.
    if (disabled.sim_cycles != off.sim_cycles ||
        enabled.sim_cycles != off.sim_cycles) {
      std::fprintf(stderr,
                   "FAIL(%s): profiling perturbed simulated cycles "
                   "(off=%llu disabled=%llu enabled=%llu)\n",
                   engine, static_cast<unsigned long long>(off.sim_cycles),
                   static_cast<unsigned long long>(disabled.sim_cycles),
                   static_cast<unsigned long long>(enabled.sim_cycles));
      return 1;
    }

    // Claim 2: attribution exactness when enabled.
    if (enabled.profiler_cycles != enabled.machine_cycles) {
      std::fprintf(stderr,
                   "FAIL(%s): class sums %llu != machine cycles %llu\n",
                   engine,
                   static_cast<unsigned long long>(enabled.profiler_cycles),
                   static_cast<unsigned long long>(enabled.machine_cycles));
      return 1;
    }

    const double disabled_x = disabled.wall_ms / off.wall_ms;
    const double enabled_x = enabled.wall_ms / off.wall_ms;

    metrics::Table table({"config", "wall ms (min)", "x off", "sim cycles",
                          "folded stacks"});
    const struct {
      Mode mode;
      const RunResult* r;
      double x;
    } rows[] = {{Mode::kOff, &off, 1.0},
                {Mode::kDisabled, &disabled, disabled_x},
                {Mode::kEnabled, &enabled, enabled_x}};
    for (const auto& row : rows) {
      table.add_row({mode_name(row.mode), format_double(row.r->wall_ms, 3),
                     metrics::ratio(row.x), std::to_string(row.r->sim_cycles),
                     std::to_string(row.r->folded_stacks)});
      results.push_back(metrics::JsonObject()
                            .add("engine", engine)
                            .add("config", mode_name(row.mode))
                            .add("wall_ms", row.r->wall_ms)
                            .add("x_off", row.x)
                            .add("sim_cycles", row.r->sim_cycles)
                            .add("folded_stacks", row.r->folded_stacks)
                            .render());
    }
    std::printf("== Profiler overhead (%s engine, lazypoline loop, "
                "%llu syscalls + %llu-insn compute kernel each, min of %d) "
                "==\n%s\n",
                engine, static_cast<unsigned long long>(kIterations),
                static_cast<unsigned long long>(kPadInsns), kReps,
                table.render().c_str());

    // Claim 3: wall-time gates.
    if (disabled_x > kDisabledGate) {
      std::fprintf(stderr,
                   "FAIL(%s): attached-but-disabled profiling costs %.3fx "
                   "(> %.2fx)\n",
                   engine, disabled_x, kDisabledGate);
      pass = false;
    }
    if (enabled_x > kEnabledGate) {
      std::fprintf(stderr, "FAIL(%s): enabled profiling costs %.3fx (> %.2fx)\n",
                   engine, enabled_x, kEnabledGate);
      pass = false;
    }
    if (pass) {
      std::printf("PASS(%s): disabled %.3fx <= %.2fx, enabled %.3fx <= %.2fx, "
                  "sim cycles identical, attribution exact\n\n",
                  engine, disabled_x, kDisabledGate, enabled_x, kEnabledGate);
    }
  }

  // The micro loop is single-task; --cpus only tags the artifact.
  bench::write_json_report(json_path, "profile_overhead", results, cli.cpus);
  return pass ? 0 : 1;
}
