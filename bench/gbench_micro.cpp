// google-benchmark microbenchmarks for the substrate components: how fast
// the simulator itself is (host-side wall time), plus simulated-cycle
// counters for the interposition paths. Complements the table/figure
// harnesses with per-component numbers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "bpf/seccomp_filter.hpp"
#include "cpu/execute.hpp"
#include "disasm/scanner.hpp"

namespace {
using namespace lzp;

void BM_DecodeSyscall(benchmark::State& state) {
  const std::uint8_t bytes[] = {isa::kByte0F, isa::kByteSyscall2};
  for (auto _ : state) {
    auto insn = isa::decode(bytes);
    benchmark::DoNotOptimize(insn);
  }
}
BENCHMARK(BM_DecodeSyscall);

void BM_DecodeMovImm64(benchmark::State& state) {
  const std::uint8_t bytes[] = {0xB8, 0x03, 1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    auto insn = isa::decode(bytes);
    benchmark::DoNotOptimize(insn);
  }
}
BENCHMARK(BM_DecodeMovImm64);

void BM_CpuStepLoop(benchmark::State& state) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 0);
  a.bind(loop);
  a.add(isa::Gpr::rbx, 1);
  a.cmp(isa::Gpr::rbx, 0);  // never zero: infinite loop
  a.jnz(loop);
  auto code = std::move(a.finish()).value();

  mem::AddressSpace as;
  (void)as.map(0x1000, mem::page_ceil(code.size()),
               mem::kProtRead | mem::kProtExec, true);
  (void)as.write_force(0x1000, code);
  cpu::CpuContext ctx;
  ctx.rip = 0x1000;

  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::step(ctx, as));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpuStepLoop);

void BM_BpfMonitoringFilter(benchmark::State& state) {
  const std::uint32_t trapped[] = {101};
  const auto program =
      bpf::SeccompFilterBuilder::trap_syscalls(trapped, bpf::SECCOMP_RET_TRAP);
  bpf::SeccompData data;
  data.nr = 39;
  const auto bytes = data.serialize();
  for (auto _ : state) {
    auto result = bpf::run(program, bytes);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BpfMonitoringFilter);

void BM_XstateSaveRestore(benchmark::State& state) {
  cpu::XState xstate;
  std::vector<std::uint8_t> buffer(cpu::XState::kSaveSize);
  for (auto _ : state) {
    xstate.save_to(buffer);
    xstate.load_from(buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_XstateSaveRestore);

void BM_LinearSweepScan(benchmark::State& state) {
  const auto program = bench::make_micro_loop(1);
  for (auto _ : state) {
    auto result = disasm::scan(program.image, program.base,
                               disasm::Strategy::kLinearSweep);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LinearSweepScan);

// Simulated-cycle counters for the interposition paths (reported via the
// "sim_cycles_per_syscall" counter; host time measures simulator speed).
void interposed_micro(benchmark::State& state,
                      const std::function<bench::Setup(const isa::Program&)>&
                          make_setup) {
  const std::uint64_t iterations = 2'000;
  const auto program = bench::make_micro_loop(iterations);
  const auto setup = make_setup(program);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles = bench::run_cycles(program, setup);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles_per_syscall"] =
      static_cast<double>(cycles) / static_cast<double>(iterations);
}

void BM_SimNativeSyscall(benchmark::State& state) {
  interposed_micro(state, [](const isa::Program&) { return bench::setup_none(); });
}
BENCHMARK(BM_SimNativeSyscall);

void BM_SimZpoline(benchmark::State& state) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  interposed_micro(state, [dummy](const isa::Program& program) {
    return bench::setup_zpoline(program, dummy);
  });
}
BENCHMARK(BM_SimZpoline);

void BM_SimLazypoline(benchmark::State& state) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  interposed_micro(state, [dummy](const isa::Program& program) {
    return bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                                   true);
  });
}
BENCHMARK(BM_SimLazypoline);

void BM_SimSud(benchmark::State& state) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  interposed_micro(state, [dummy](const isa::Program&) {
    return bench::setup_sud(dummy);
  });
}
BENCHMARK(BM_SimSud);

}  // namespace

BENCHMARK_MAIN();
