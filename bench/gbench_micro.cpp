// google-benchmark microbenchmarks for the substrate components: how fast
// the simulator itself is (host-side wall time), plus simulated-cycle
// counters for the interposition paths. Complements the table/figure
// harnesses with per-component numbers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "bpf/seccomp_filter.hpp"
#include "cpu/execute.hpp"
#include "disasm/scanner.hpp"
#ifndef LZP_TRACE_DISABLED
#include "trace/tracer.hpp"
#endif

namespace {
using namespace lzp;

void BM_DecodeSyscall(benchmark::State& state) {
  const std::uint8_t bytes[] = {isa::kByte0F, isa::kByteSyscall2};
  for (auto _ : state) {
    auto insn = isa::decode(bytes);
    benchmark::DoNotOptimize(insn);
  }
}
BENCHMARK(BM_DecodeSyscall);

void BM_DecodeMovImm64(benchmark::State& state) {
  const std::uint8_t bytes[] = {0xB8, 0x03, 1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    auto insn = isa::decode(bytes);
    benchmark::DoNotOptimize(insn);
  }
}
BENCHMARK(BM_DecodeMovImm64);

// Shared setup for the step-loop benches: an infinite compute loop mapped
// executable, with the context parked at its entry.
struct StepLoopFixture {
  mem::AddressSpace as;
  cpu::CpuContext ctx;

  StepLoopFixture() {
    isa::Assembler a;
    const auto entry = a.new_label();
    const auto loop = a.new_label();
    a.bind(entry);
    a.mov(isa::Gpr::rbx, 0);
    a.bind(loop);
    a.add(isa::Gpr::rbx, 1);
    a.cmp(isa::Gpr::rbx, 0);  // never zero: infinite loop
    a.jnz(loop);
    auto code = std::move(a.finish()).value();
    (void)as.map(0x1000, mem::page_ceil(code.size()),
                 mem::kProtRead | mem::kProtExec, true);
    (void)as.write_force(0x1000, code);
    ctx.rip = 0x1000;
  }
};

// The fetch/decode hot loop with the decode cache force-disabled vs enabled.
// The pair is the headline simulator-throughput number: items_per_second is
// host-side instructions retired per second, and the cached run exports its
// hit/miss/invalidation counters into the bench JSON
// (--benchmark_format=json) alongside.
void BM_CpuStepLoop(benchmark::State& state) {
  StepLoopFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::step(f.ctx, f.as));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpuStepLoop);

void BM_CpuStepLoopCached(benchmark::State& state) {
  StepLoopFixture f;
  cpu::DecodeCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::step(f.ctx, f.as, &cache));
  }
  state.SetItemsProcessed(state.iterations());
  const cpu::DecodeCacheStats& stats = cache.stats();
  state.counters["decode_hit_rate"] = stats.hit_rate();
  state.counters["decode_hits"] = static_cast<double>(stats.hits);
  state.counters["decode_misses"] = static_cast<double>(stats.misses);
  state.counters["decode_invalidations"] =
      static_cast<double>(stats.invalidations);
}
BENCHMARK(BM_CpuStepLoopCached);

// Same comparison end-to-end through Machine::run on straight-line compute
// (no syscalls), so kernel-layer overheads are included. The block-engine
// variant additionally exports the superblock-cache counters so the bench
// JSON shows how much of the run was batch-dispatched.
void machine_straight_line(benchmark::State& state, bool cache_enabled,
                           bool block_enabled = false,
                           bool trace_enabled = false) {
  constexpr std::uint64_t kIterations = 50'000;
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, kIterations);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.add(isa::Gpr::rcx, 3);
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  const auto program =
      bench::unwrap(isa::make_program("straight-line", a, entry), "assemble");

  std::uint64_t insns = 0;
  cpu::DecodeCacheStats totals;
  cpu::BlockCacheStats block_totals;
  cpu::TraceCacheStats trace_totals;
  for (auto _ : state) {
    kern::Machine machine;
    machine.decode_cache_enabled = cache_enabled;
    machine.block_exec_enabled = block_enabled;
    machine.trace_exec_enabled = trace_enabled;
    const kern::Tid tid = bench::unwrap(machine.load(program), "load");
    const auto stats = machine.run();
    if (!stats.all_exited) bench::die("machine did not quiesce");
    insns += machine.find_task(tid)->insns_retired;
    totals = machine.decode_cache_totals();
    block_totals = machine.block_cache_totals();
    trace_totals = machine.trace_cache_totals();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insns));
  state.counters["decode_hit_rate"] = totals.hit_rate();
  state.counters["decode_hits"] = static_cast<double>(totals.hits);
  state.counters["decode_misses"] = static_cast<double>(totals.misses);
  state.counters["decode_invalidations"] =
      static_cast<double>(totals.invalidations);
  if (block_enabled) {
    state.counters["block_hit_rate"] = block_totals.hit_rate();
    state.counters["block_hits"] = static_cast<double>(block_totals.hits);
    state.counters["block_misses"] = static_cast<double>(block_totals.misses);
    state.counters["block_blocks_built"] =
        static_cast<double>(block_totals.blocks_built);
    state.counters["block_invalidations"] =
        static_cast<double>(block_totals.invalidations);
  }
  if (trace_enabled) {
    state.counters["trace_traces_built"] =
        static_cast<double>(trace_totals.traces_built);
    state.counters["trace_chain_follows"] =
        static_cast<double>(trace_totals.chain_follows);
    state.counters["trace_side_exits"] =
        static_cast<double>(trace_totals.side_exits);
    state.counters["trace_demotions"] =
        static_cast<double>(trace_totals.demotions);
    state.counters["trace_fused_fastpaths"] =
        static_cast<double>(trace_totals.fused_fastpaths);
  }
}

void BM_MachineStraightLineUncached(benchmark::State& state) {
  machine_straight_line(state, /*cache_enabled=*/false);
}
BENCHMARK(BM_MachineStraightLineUncached);

void BM_MachineStraightLineCached(benchmark::State& state) {
  machine_straight_line(state, /*cache_enabled=*/true);
}
BENCHMARK(BM_MachineStraightLineCached);

#ifndef LZP_BLOCK_EXEC_DISABLED
void BM_MachineStraightLineBlock(benchmark::State& state) {
  machine_straight_line(state, /*cache_enabled=*/true, /*block_enabled=*/true);
}
BENCHMARK(BM_MachineStraightLineBlock);

#ifndef LZP_TRACE_EXEC_DISABLED
// Block engine plus chained-trace execution (cpu/trace_cache.hpp) on top;
// exports the trace engine's formation/chaining counters into the bench JSON.
void BM_MachineStraightLineTrace(benchmark::State& state) {
  machine_straight_line(state, /*cache_enabled=*/true, /*block_enabled=*/true,
                        /*trace_enabled=*/true);
}
BENCHMARK(BM_MachineStraightLineTrace);
#endif
#endif

void BM_BpfMonitoringFilter(benchmark::State& state) {
  const std::uint32_t trapped[] = {101};
  const auto program =
      bpf::SeccompFilterBuilder::trap_syscalls(trapped, bpf::SECCOMP_RET_TRAP)
          .value();
  bpf::SeccompData data;
  data.nr = 39;
  const auto bytes = data.serialize();
  for (auto _ : state) {
    auto result = bpf::run(program, bytes);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BpfMonitoringFilter);

void BM_XstateSaveRestore(benchmark::State& state) {
  cpu::XState xstate;
  std::vector<std::uint8_t> buffer(cpu::XState::kSaveSize);
  for (auto _ : state) {
    xstate.save_to(buffer);
    xstate.load_from(buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_XstateSaveRestore);

void BM_LinearSweepScan(benchmark::State& state) {
  const auto program = bench::make_micro_loop(1);
  for (auto _ : state) {
    auto result = disasm::scan(program.image, program.base,
                               disasm::Strategy::kLinearSweep);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LinearSweepScan);

// Simulated-cycle counters for the interposition paths (reported via the
// "sim_cycles_per_syscall" counter; host time measures simulator speed).
void interposed_micro(benchmark::State& state,
                      const std::function<bench::Setup(const isa::Program&)>&
                          make_setup) {
  const std::uint64_t iterations = 2'000;
  const auto program = bench::make_micro_loop(iterations);
  const auto setup = make_setup(program);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles = bench::run_cycles(program, setup);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles_per_syscall"] =
      static_cast<double>(cycles) / static_cast<double>(iterations);
}

void BM_SimNativeSyscall(benchmark::State& state) {
  interposed_micro(state, [](const isa::Program&) { return bench::setup_none(); });
}
BENCHMARK(BM_SimNativeSyscall);

void BM_SimZpoline(benchmark::State& state) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  interposed_micro(state, [dummy](const isa::Program& program) {
    return bench::setup_zpoline(program, dummy);
  });
}
BENCHMARK(BM_SimZpoline);

void BM_SimLazypoline(benchmark::State& state) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  interposed_micro(state, [dummy](const isa::Program& program) {
    return bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                                   true);
  });
}
BENCHMARK(BM_SimLazypoline);

void BM_SimSud(benchmark::State& state) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  interposed_micro(state, [dummy](const isa::Program&) {
    return bench::setup_sud(dummy);
  });
}
BENCHMARK(BM_SimSud);

#ifndef LZP_TRACE_DISABLED
// Tracing overhead on the hottest interposed path: the same lazypoline micro
// loop with a Tracer attached-but-disabled vs enabled. Compare against
// BM_SimLazypoline (no sink at all) for the three-way off/disabled/enabled
// split the trace-overhead gate checks.
void lazypoline_traced(benchmark::State& state, bool enabled) {
  auto dummy = std::make_shared<interpose::DummyHandler>();
  auto tracer = std::make_shared<trace::Tracer>();
  tracer->set_enabled(enabled);
  interposed_micro(state, [dummy, tracer](const isa::Program& program) {
    auto inner = bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                                         true);
    return [inner, tracer](kern::Machine& machine, kern::Tid tid) {
      tracer->attach(machine);
      inner(machine, tid);
    };
  });
  // Cumulative across iterations (each run re-attaches the same tracer).
  state.counters["trace_events"] = static_cast<double>(
      tracer->ring().size() + tracer->ring().dropped());
}

void BM_SimLazypolineTracedDisabled(benchmark::State& state) {
  lazypoline_traced(state, /*enabled=*/false);
}
BENCHMARK(BM_SimLazypolineTracedDisabled);

void BM_SimLazypolineTracedEnabled(benchmark::State& state) {
  lazypoline_traced(state, /*enabled=*/true);
}
BENCHMARK(BM_SimLazypolineTracedEnabled);

// Straight-line throughput with the trace probes compiled in and a sink
// attached but disabled — the acceptance bar for "always-on" tracing: the
// non-syscall hot loop must not notice the probe layer.
void BM_MachineStraightLineTracedDisabled(benchmark::State& state) {
  trace::Tracer tracer;
  tracer.set_enabled(false);
  constexpr std::uint64_t kIterations = 50'000;
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, kIterations);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.add(isa::Gpr::rcx, 3);
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  const auto program =
      bench::unwrap(isa::make_program("straight-line", a, entry), "assemble");

  std::uint64_t insns = 0;
  for (auto _ : state) {
    kern::Machine machine;
    tracer.attach(machine);
    const kern::Tid tid = bench::unwrap(machine.load(program), "load");
    const auto stats = machine.run();
    if (!stats.all_exited) bench::die("machine did not quiesce");
    insns += machine.find_task(tid)->insns_retired;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insns));
}
BENCHMARK(BM_MachineStraightLineTracedDisabled);
#endif  // LZP_TRACE_DISABLED

}  // namespace

BENCHMARK_MAIN();
