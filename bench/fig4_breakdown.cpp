// Reproduces Figure 4: lazypoline's overhead breakdown on the
// microbenchmark. The figure decomposes the total overhead into:
//
//   baseline  ->  + zpoline-style rewriting (the fast path itself)
//             ->  + enabling SUD (the exhaustiveness guarantee's kernel cost)
//             ->  + xstate preservation (ABI compliance)
//
// and shows that with SUD disabled, lazypoline's fast path matches zpoline
// exactly ("the overhead labeled as 'enabling SUD' precisely represents the
// added cost of our exhaustiveness guarantee over prior work").
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/report.hpp"

namespace {
using namespace lzp;
constexpr std::uint64_t kIterations = 50'000;
}  // namespace

int main() {
  const isa::Program program = bench::make_micro_loop(kIterations);
  auto dummy = std::make_shared<interpose::DummyHandler>();

  const double baseline =
      static_cast<double>(bench::run_cycles(program, bench::setup_none()));
  const double zpoline = static_cast<double>(
      bench::run_cycles(program, bench::setup_zpoline(program, dummy)));
  const double lazy_no_sud = static_cast<double>(bench::run_cycles(
      program, bench::setup_lazypoline(program, dummy, core::XstateMode::kNone,
                                       /*sud=*/false)));
  const double lazy_no_xstate = static_cast<double>(bench::run_cycles(
      program, bench::setup_lazypoline(program, dummy, core::XstateMode::kNone,
                                       /*sud=*/true)));
  const double lazy_full = static_cast<double>(bench::run_cycles(
      program, bench::setup_lazypoline(program, dummy, core::XstateMode::kFull,
                                       /*sud=*/true)));

  std::printf("== Figure 4: lazypoline overhead breakdown ==\n\n");
  metrics::Table table({"Component", "Cycles/run", "Cumulative overhead"});
  auto row = [&](const char* name, double cycles) {
    table.add_row({name, metrics::ratio(cycles / baseline, 3),
                   metrics::percent(100.0 * (cycles - baseline) / baseline, 1)});
  };
  row("baseline (native syscall 500)", baseline);
  row("+ rewriting to fast path (== zpoline)", lazy_no_sud);
  row("+ enabling SUD (exhaustiveness)", lazy_no_xstate);
  row("+ xstate preservation (full ABI)", lazy_full);
  std::printf("%s\n", table.render().c_str());

  const double fast_vs_zpoline = lazy_no_sud / zpoline;
  std::printf("fast path (SUD off) vs zpoline: %.4fx  (paper: identical)\n",
              fast_vs_zpoline);
  std::printf("'enabling SUD' component:       +%.1f%% of baseline\n",
              100.0 * (lazy_no_xstate - lazy_no_sud) / baseline);
  std::printf("'xstate preservation' component: +%.1f%% of baseline "
              "(the majority of lazypoline's overhead, as in the paper)\n",
              100.0 * (lazy_full - lazy_no_xstate) / baseline);
  return 0;
}
