#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest (with LZP_WERROR=ON so the tree must
# be warning-clean), then an LZP_SANITIZE=ON build (which also exercises the
# trace cache and chained execution under ASan — trace_exec_test runs in the
# full suite), then an LZP_BLOCK_EXEC=OFF + LZP_SANITIZE=ON build (proves the
# superblock engine compiles out cleanly and the per-instruction reference
# path still passes the whole suite under ASan), then an LZP_TRACE_EXEC=OFF
# + LZP_SANITIZE=ON build (the block engine without the trace tier: the
# block/trace/profiler suites must pass with the trace engine compiled out),
# then a clang-tidy leg (skipped when clang-tidy is not installed)
# failing on findings not in scripts/clang_tidy_baseline.txt, then the
# static-analysis gate (examples/analyze --gate on the webserver workload:
# fails if any verified-eager-rewritten site was not statically SAFE, or if
# the runtime cross-checker observed a kernel-verified syscall disagreeing
# with a SAFE verdict), then the syscall-flow policy gate (examples/policy
# gate: the webserver must run violation-free under its own extracted
# automaton on all four mechanisms, and every adversarial corpus program
# must trip at least one violation with identical counts across mechanisms),
# then the record-overhead bench (emits
# BENCH_record_overhead.json at the repo root and fails if lazypoline-based
# recording is not cheaper than ptrace's), then the trace-overhead bench
# (emits BENCH_trace_overhead.json and fails if an attached-but-disabled
# Tracer costs >2% wall time or an enabled one >15%, or if tracing perturbs
# simulated cycles at all), then the block-exec bench (emits
# BENCH_block_exec.json and fails if the superblock engine is <1.5x the
# decode-cache baseline on straight-line code or perturbs simulated
# cycles/steps on any workload), then the analysis-accuracy bench (emits
# BENCH_analysis.json and fails on any SAFE false positive or if the analyzer
# is not strictly more precise than the raw byte scan), then the policy
# enforcement bench (emits BENCH_policy.json and fails if lazypoline-based
# enforcement costs >1.15x wall time, perturbs simulated cycles, or the
# static automaton does not contain the dynamically learned one), then the
# SMP bench
# (fig5_webservers --cpus=8, emits BENCH_smp.json; its >=2x host-speedup
# gate self-skips on hosts with <8 cores), then the profiler-overhead bench
# (emits BENCH_profile_overhead.json and fails if an enabled profiler costs
# >1.10x wall time, an attached-but-disabled one >1.02x, profiling perturbs
# simulated cycles, or per-class attribution is not cycle-exact), and
# finally the bench-regression diff (scripts/bench_diff.py compares every
# BENCH_*.json emitted above against bench/baselines/ with per-metric
# tolerance bands; accept intentional changes with --regen-bench-baselines).
#
# The sanitizer pass also includes a TSan leg (LZP_SANITIZE=thread) running
# the concurrency-relevant suites — the SMP scheduler, the shared-AS
# invalidation tests, and the threaded webserver — so every data race the
# parallel substrate could introduce is caught by the race detector, not by
# flaky output.
#
#   scripts/check.sh [--no-sanitize] [--no-bench] [--regen-tidy-baseline]
#                    [--regen-bench-baselines]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

run_sanitize=1
run_bench=1
regen_tidy=0
regen_bench=0
for arg in "$@"; do
  case "${arg}" in
    --no-sanitize) run_sanitize=0 ;;
    --no-bench) run_bench=0 ;;
    --regen-tidy-baseline) regen_tidy=1 ;;
    --regen-bench-baselines) regen_bench=1 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest (LZP_WERROR=ON) =="
cmake -B build -S . -DLZP_WERROR=ON >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build -j"$(nproc)" --output-on-failure

if [[ "${run_sanitize}" == 1 ]]; then
  echo "== sanitizer build (LZP_SANITIZE=ON) =="
  cmake -B build-asan -S . -DLZP_SANITIZE=ON -DLZP_WERROR=ON >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -j"$(nproc)" --output-on-failure

  echo "== no-block-engine build (LZP_BLOCK_EXEC=OFF, LZP_SANITIZE=ON) =="
  cmake -B build-noblock -S . -DLZP_BLOCK_EXEC=OFF -DLZP_SANITIZE=ON \
    -DLZP_WERROR=ON >/dev/null
  cmake --build build-noblock -j"$(nproc)"
  ctest --test-dir build-noblock -j"$(nproc)" --output-on-failure

  echo "== no-trace-engine build (LZP_TRACE_EXEC=OFF, LZP_SANITIZE=ON) =="
  cmake -B build-notrace -S . -DLZP_TRACE_EXEC=OFF -DLZP_SANITIZE=ON \
    -DLZP_WERROR=ON >/dev/null
  cmake --build build-notrace -j"$(nproc)" --target \
    block_exec_test trace_exec_test profile_test
  ./build-notrace/tests/block_exec_test
  ./build-notrace/tests/trace_exec_test
  ./build-notrace/tests/profile_test

  echo "== thread-sanitizer build (LZP_SANITIZE=thread, SMP suites) =="
  cmake -B build-tsan -S . -DLZP_SANITIZE=thread -DLZP_WERROR=ON >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target \
    smp_test shared_as_invalidation_test threaded_server_test fig5_webservers
  ./build-tsan/tests/smp_test
  ./build-tsan/tests/shared_as_invalidation_test
  ./build-tsan/tests/threaded_server_test
  # A short 4-CPU webserver differential under TSan: the parallel scheduler
  # end to end, with real host threads racing on the kernel tables. The
  # artifact goes to a scratch path so the real BENCH_smp.json below stays
  # the 8-CPU sweep.
  ./build-tsan/bench/fig5_webservers --cpus=4 build-tsan/BENCH_smp.json \
    >/dev/null
fi

# clang-tidy leg: compare normalized findings (<file>:<check>) against the
# tracked baseline; new findings fail, fixed findings are reported. Skipped
# gracefully when clang-tidy is not installed (e.g. minimal CI containers).
tidy_baseline="scripts/clang_tidy_baseline.txt"
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (baseline: ${tidy_baseline}) =="
  tidy_raw="$(mktemp)"
  tidy_now="$(mktemp)"
  trap 'rm -f "${tidy_raw}" "${tidy_now}"' EXIT
  # All first-party translation units; compile_commands.json comes from the
  # tier-1 configure above (CMAKE_EXPORT_COMPILE_COMMANDS is always ON).
  find src -name '*.cpp' -print0 \
    | xargs -0 clang-tidy -p build --quiet >"${tidy_raw}" 2>/dev/null || true
  # Normalize "/abs/path/file.cpp:12:3: warning: ... [check-name]" to
  # "file.cpp-relative-path:check-name"; drop line numbers so unrelated edits
  # don't churn the baseline.
  sed -n "s|^${repo_root}/\([^:]*\):[0-9]*:[0-9]*: warning: .*\[\(.*\)\]$|\1:\2|p" \
    "${tidy_raw}" | sort -u >"${tidy_now}"
  if [[ "${regen_tidy}" == 1 ]]; then
    { grep '^#' "${tidy_baseline}"; cat "${tidy_now}"; } >"${tidy_baseline}.new"
    mv "${tidy_baseline}.new" "${tidy_baseline}"
    echo "clang-tidy baseline regenerated ($(wc -l <"${tidy_now}") findings)"
  else
    new_findings="$(grep -vxF -f <(grep -v '^#' "${tidy_baseline}") \
      "${tidy_now}" || true)"
    if [[ -n "${new_findings}" ]]; then
      echo "clang-tidy: NEW findings not in ${tidy_baseline}:" >&2
      echo "${new_findings}" >&2
      echo "(fix them, or accept intentionally with --regen-tidy-baseline)" >&2
      exit 1
    fi
    echo "clang-tidy: no new findings"
  fi
else
  echo "== clang-tidy skipped (not installed) =="
fi

echo "== static-analysis gate (examples/analyze --gate webserver) =="
./build/examples/analyze --workload=webserver --gate

echo "== syscall-flow policy gate (examples/policy gate) =="
./build/examples/policy gate

# Value-flow precision leg: the full pipeline (dataflow resolution, argument
# predicates, automaton minimization) must fully resolve the webserver —
# zero wildcard edges — and minimization must not grow the cBPF lowering.
echo "== policy precision gate (dataflow + predicates + minimization) =="
policy_json="$(./build/examples/policy gate --dataflow --predicates --minimize --json)"
grep -q '"wildcard_edges": 0,' <<<"${policy_json}" || {
  echo "policy precision gate: webserver has wildcard edges" >&2
  echo "${policy_json}" >&2
  exit 1
}
insns_unmin="$(sed -n 's/.*"insns_unminimized": \([0-9]*\).*/\1/p' <<<"${policy_json}")"
insns_min="$(sed -n 's/.*"insns_minimized": \([0-9]*\).*/\1/p' <<<"${policy_json}")"
if [[ -z "${insns_min}" || -z "${insns_unmin}" || "${insns_min}" -gt "${insns_unmin}" ]]; then
  echo "policy precision gate: minimized lowering ${insns_min:-?} insns" \
       "exceeds unminimized ${insns_unmin:-?}" >&2
  exit 1
fi
echo "policy precision gate: 0 wildcard edges," \
     "${insns_min}/${insns_unmin} cBPF insns after minimization"

if [[ "${run_bench}" == 1 ]]; then
  echo "== record-overhead bench =="
  ./build/bench/record_overhead BENCH_record_overhead.json

  if [[ -x build/bench/trace_overhead ]]; then
    echo "== trace-overhead bench =="
    ./build/bench/trace_overhead BENCH_trace_overhead.json
  else
    echo "== trace-overhead bench skipped (LZP_TRACE=OFF) =="
  fi

  if [[ -x build/bench/block_exec ]]; then
    echo "== block-exec bench =="
    ./build/bench/block_exec BENCH_block_exec.json
  else
    echo "== block-exec bench skipped (LZP_BLOCK_EXEC=OFF) =="
  fi

  echo "== analysis-accuracy bench =="
  ./build/bench/analysis_accuracy BENCH_analysis.json

  echo "== policy-overhead bench =="
  ./build/bench/policy_overhead BENCH_policy.json

  echo "== SMP scale-out bench (fig5 --cpus=8 -> BENCH_smp.json) =="
  ./build/bench/fig5_webservers --cpus=8

  echo "== profiler-overhead bench =="
  ./build/bench/profile_overhead BENCH_profile_overhead.json

  # Bench-regression diff: every artifact the legs above produced, compared
  # against the committed baselines (host-dependent metrics are skipped by
  # the tool; simulation-deterministic ones must match within tolerance).
  bench_artifacts=()
  for artifact in BENCH_*.json; do
    [[ -f "${artifact}" ]] && bench_artifacts+=("${artifact}")
  done
  if [[ "${regen_bench}" == 1 ]]; then
    echo "== bench baselines regenerated (bench/baselines/) =="
    python3 scripts/bench_diff.py --regen "${bench_artifacts[@]}"
  else
    echo "== bench-regression diff (baselines: bench/baselines/) =="
    python3 scripts/bench_diff.py "${bench_artifacts[@]}"
  fi
fi

echo "check.sh: all gates passed"
