#!/usr/bin/env bash
# Tier-1 gate: configure + build + ctest, then an LZP_SANITIZE=ON build, then
# an LZP_BLOCK_EXEC=OFF + LZP_SANITIZE=ON build (proves the superblock engine
# compiles out cleanly and the per-instruction reference path still passes the
# whole suite under ASan), then the record-overhead bench (emits
# BENCH_record_overhead.json at the repo root and fails if lazypoline-based
# recording is not cheaper than ptrace's), then the trace-overhead bench
# (emits BENCH_trace_overhead.json and fails if an attached-but-disabled
# Tracer costs >2% wall time or an enabled one >15%, or if tracing perturbs
# simulated cycles at all), then the block-exec bench (emits
# BENCH_block_exec.json and fails if the superblock engine is <1.5x the
# decode-cache baseline on straight-line code or perturbs simulated
# cycles/steps on any workload).
#
#   scripts/check.sh [--no-sanitize] [--no-bench]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

run_sanitize=1
run_bench=1
for arg in "$@"; do
  case "${arg}" in
    --no-sanitize) run_sanitize=0 ;;
    --no-bench) run_bench=0 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build -j"$(nproc)" --output-on-failure

if [[ "${run_sanitize}" == 1 ]]; then
  echo "== sanitizer build (LZP_SANITIZE=ON) =="
  cmake -B build-asan -S . -DLZP_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -j"$(nproc)" --output-on-failure

  echo "== no-block-engine build (LZP_BLOCK_EXEC=OFF, LZP_SANITIZE=ON) =="
  cmake -B build-noblock -S . -DLZP_BLOCK_EXEC=OFF -DLZP_SANITIZE=ON >/dev/null
  cmake --build build-noblock -j"$(nproc)"
  ctest --test-dir build-noblock -j"$(nproc)" --output-on-failure
fi

if [[ "${run_bench}" == 1 ]]; then
  echo "== record-overhead bench =="
  ./build/bench/record_overhead BENCH_record_overhead.json

  if [[ -x build/bench/trace_overhead ]]; then
    echo "== trace-overhead bench =="
    ./build/bench/trace_overhead BENCH_trace_overhead.json
  else
    echo "== trace-overhead bench skipped (LZP_TRACE=OFF) =="
  fi

  if [[ -x build/bench/block_exec ]]; then
    echo "== block-exec bench =="
    ./build/bench/block_exec BENCH_block_exec.json
  else
    echo "== block-exec bench skipped (LZP_BLOCK_EXEC=OFF) =="
  fi
fi

echo "check.sh: all gates passed"
