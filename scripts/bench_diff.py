#!/usr/bin/env python3
"""Bench-regression tracker: compare BENCH_*.json artifacts against committed
baselines in bench/baselines/, metric by metric, with per-metric tolerance
bands.

Every bench binary emits {"benchmark": ..., "cpus": ..., "results": [row...]}
via bench::write_json_report (one shared escaper — see bench/bench_util.hpp).
Rows are matched by an identity key (the row's string-valued fields, the
well-known integer identity fields, and the set of metric names, so rows may
be reordered but not silently dropped). Matched rows are compared metric by
metric:

  * Host-dependent metrics (wall times, host core counts, host-speedup
    ratios) are SKIPPED — they vary run to run and machine to machine.
  * Simulation-deterministic integers (sim_cycles, steals, trace_events, ...)
    must match the baseline EXACTLY: the machine is a pure function of
    (program, seed), so any drift is a real behavior change.
  * Simulation-deterministic floats (rps, quantiles, hit rates) get a small
    relative tolerance band (they pass through decimal formatting), with
    per-metric overrides in TOLERANCES.

Usage:
  scripts/bench_diff.py [--baseline-dir bench/baselines] FILE.json...
  scripts/bench_diff.py --regen [--baseline-dir bench/baselines] FILE.json...

Exit status: 0 all within tolerance, 1 regression / schema drift, 2 usage or
missing baseline (seed with --regen, wired into check.sh as
--regen-bench-baselines).
"""

import argparse
import json
import os
import re
import shutil
import sys

# Metrics that depend on the host machine or wall clock, never compared.
SKIP_METRIC = re.compile(
    r"(^(wall|host)_)|(_ms(_|$))|((^|_)x(_|$))|(^seconds$)|(^mb_per_sec$)"
)

# Integer fields that identify a row rather than measure it.
IDENTITY_INTS = {"workers", "cpus", "iterations", "size", "nr"}

# Relative tolerance per metric name (first matching regex wins). Everything
# integer-valued and unlisted is compared exactly; unlisted floats get
# DEFAULT_FLOAT_TOL to absorb decimal round-tripping.
TOLERANCES = [
    (re.compile(r"^(rps|pct_of_baseline)$"), 1e-6),
    (re.compile(r"^p(50|95|99)_cycles$"), 1e-6),
    (re.compile(r"^hit_rate$"), 1e-6),
]
DEFAULT_FLOAT_TOL = 1e-6


def row_identity(row):
    """Stable identity for a result row: its string fields, its well-known
    integer identity fields, and the sorted set of metric names (so rows with
    the same labels but different shapes — e.g. an accuracy row vs. a perf
    row for one strategy — stay distinct)."""
    parts = []
    metrics = []
    for key in sorted(row):
        value = row[key]
        if isinstance(value, str) or (key in IDENTITY_INTS):
            parts.append(f"{key}={value}")
        else:
            metrics.append(key)
    parts.append("metrics=" + ",".join(metrics))
    return "|".join(parts)


def tolerance_for(metric):
    for pattern, tol in TOLERANCES:
        if pattern.search(metric):
            return tol
    return None


def compare_value(metric, base, cur):
    """Returns None if within tolerance, else a human-readable complaint."""
    if isinstance(base, str) or isinstance(cur, str):
        return None if base == cur else f"{metric}: '{base}' -> '{cur}'"
    tol = tolerance_for(metric)
    if tol is None:
        if isinstance(base, float) or isinstance(cur, float):
            tol = DEFAULT_FLOAT_TOL
        else:
            # Simulation-deterministic integer: exact or it's a regression.
            if base != cur:
                return f"{metric}: {base} -> {cur} (exact match required)"
            return None
    denom = max(abs(base), abs(cur), 1e-12)
    rel = abs(cur - base) / denom
    if rel > tol:
        return f"{metric}: {base} -> {cur} (rel {rel:.2e} > tol {tol:.0e})"
    return None


def compare_rows(identity, base_row, cur_row, problems):
    keys = set(base_row) | set(cur_row)
    for key in sorted(keys):
        if isinstance(base_row.get(key), str) and isinstance(
            cur_row.get(key), str
        ):
            continue  # identity field, already matched
        if key in IDENTITY_INTS or SKIP_METRIC.search(key):
            continue
        if key not in base_row:
            problems.append(f"  [{identity}] new metric '{key}' (re-baseline)")
            continue
        if key not in cur_row:
            problems.append(f"  [{identity}] metric '{key}' disappeared")
            continue
        complaint = compare_value(key, base_row[key], cur_row[key])
        if complaint is not None:
            problems.append(f"  [{identity}] {complaint}")


def compare_file(baseline_path, current_path):
    with open(baseline_path) as f:
        base = json.load(f)
    with open(current_path) as f:
        cur = json.load(f)

    problems = []
    for key in ("benchmark", "cpus"):
        if base.get(key) != cur.get(key):
            problems.append(
                f"  top-level '{key}': {base.get(key)!r} -> {cur.get(key)!r}"
            )

    base_rows = {row_identity(r): r for r in base.get("results", [])}
    cur_rows = {row_identity(r): r for r in cur.get("results", [])}
    for identity in sorted(base_rows.keys() - cur_rows.keys()):
        problems.append(f"  row vanished: [{identity}]")
    for identity in sorted(cur_rows.keys() - base_rows.keys()):
        problems.append(f"  row appeared: [{identity}] (re-baseline)")
    for identity in sorted(base_rows.keys() & cur_rows.keys()):
        compare_rows(identity, base_rows[identity], cur_rows[identity], problems)
    return problems


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json artifacts against bench/baselines/"
    )
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument(
        "--regen",
        action="store_true",
        help="copy the given artifacts into the baseline dir instead of diffing",
    )
    parser.add_argument("files", nargs="+", metavar="FILE.json")
    args = parser.parse_args()

    if args.regen:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.files:
            if not os.path.exists(path):
                print(f"bench_diff: missing artifact {path}", file=sys.stderr)
                return 2
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"bench_diff: baseline <- {path}")
        return 0

    failed = False
    for path in args.files:
        name = os.path.basename(path)
        baseline = os.path.join(args.baseline_dir, name)
        if not os.path.exists(path):
            print(f"bench_diff: missing artifact {path}", file=sys.stderr)
            return 2
        if not os.path.exists(baseline):
            print(
                f"bench_diff: no baseline for {name} — seed it with "
                f"scripts/bench_diff.py --regen {path} (or check.sh "
                f"--regen-bench-baselines)",
                file=sys.stderr,
            )
            return 2
        problems = compare_file(baseline, path)
        if problems:
            failed = True
            print(f"bench_diff: {name}: REGRESSION vs {baseline}:")
            for p in problems:
                print(p)
        else:
            print(f"bench_diff: {name}: ok")
    if failed:
        print(
            "bench_diff: out-of-tolerance changes; if intentional, rerun "
            "check.sh --regen-bench-baselines",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
